package sched

import (
	"math"
	"testing"

	"saber/internal/task"
)

// ϕ-aware matrix tests: the service-time fits must move the CPU/GPU
// crossover as ϕ moves, with no stale per-ϕ state — every Rate call
// evaluates the live fit at the live ϕ.

// trainPhiMatrix builds a 1-query matrix whose fits encode the
// canonical hybrid shape: the GPU pays a large fixed per-task overhead
// (launch + staging) but streams bytes fast; the CPU starts instantly
// but processes bytes slowly.
//
//	cpu: service(ϕ) =  10µs + 1.00 ns/B · ϕ
//	gpu: service(ϕ) = 500µs + 0.05 ns/B · ϕ
//
// Crossover at ϕ ≈ 516 KB: below it the CPU is faster, above the GPU.
func trainPhiMatrix() *Matrix {
	m := NewMatrix(1, 1000, 0.2, 1, 1)
	// Spread the observed sizes well past the 5% trust threshold.
	for i := 0; i < 16; i++ {
		bytes := int64(64<<10 + i*(64<<10)) // 64 KiB .. 1 MiB
		cpuSec := 10e-6 + 1.0e-9*float64(bytes)
		gpuSec := 500e-6 + 0.05e-9*float64(bytes)
		m.ObserveSized(0, CPU, bytes, cpuSec)
		m.ObserveSized(0, GPU, bytes, gpuSec)
	}
	return m
}

// TestMatrixCrossoverFlipsWithPhi: the core ϕ-aware property — moving
// ϕ across the crossover flips Preferred with NO new observations in
// between. A matrix that cached per-ϕ rows would need fresh completions
// at the new ϕ before flipping; the live fit flips instantly.
func TestMatrixCrossoverFlipsWithPhi(t *testing.T) {
	m := trainPhiMatrix()

	m.SetPhi(16 << 10)
	if got := m.Preferred(0); got != CPU {
		t.Fatalf("ϕ=16KiB: preferred %v, want CPU (cpu rate %.0f, gpu rate %.0f)",
			got, m.Rate(0, CPU), m.Rate(0, GPU))
	}
	m.SetPhi(2 << 20)
	if got := m.Preferred(0); got != GPU {
		t.Fatalf("ϕ=2MiB: preferred %v, want GPU (cpu rate %.0f, gpu rate %.0f)",
			got, m.Rate(0, CPU), m.Rate(0, GPU))
	}
	// And back: nothing latched.
	m.SetPhi(16 << 10)
	if got := m.Preferred(0); got != CPU {
		t.Fatalf("ϕ back to 16KiB: preferred %v, want CPU again", got)
	}
}

// TestMatrixRateTracksPhi: Rate at a given ϕ must match the fitted
// service-time model, and changing ϕ must change the rate monotonically
// in the right direction for each class.
func TestMatrixRateTracksPhi(t *testing.T) {
	m := trainPhiMatrix()

	m.SetPhi(64 << 10)
	smallCPU, smallGPU := m.Rate(0, CPU), m.Rate(0, GPU)
	m.SetPhi(1 << 20)
	bigCPU, bigGPU := m.Rate(0, CPU), m.Rate(0, GPU)

	// Larger tasks always take longer, so per-task rates fall for both —
	// but the GPU's rate falls far less (its cost is mostly the fixed
	// launch) than the CPU's (its cost is mostly per-byte).
	if bigCPU >= smallCPU || bigGPU >= smallGPU {
		t.Fatalf("rates did not fall with ϕ: cpu %.0f→%.0f, gpu %.0f→%.0f",
			smallCPU, bigCPU, smallGPU, bigGPU)
	}
	if cpuDrop, gpuDrop := smallCPU/bigCPU, smallGPU/bigGPU; gpuDrop >= cpuDrop {
		t.Fatalf("GPU rate dropped faster than CPU with ϕ (cpu ×%.1f, gpu ×%.1f) — fit slopes inverted",
			cpuDrop, gpuDrop)
	}

	// The fitted rate at 1 MiB must match the generating model.
	wantSec := 10e-6 + 1.0e-9*float64(1<<20)
	if got := bigCPU; math.Abs(got-1/wantSec)/(1/wantSec) > 0.05 {
		t.Fatalf("cpu rate at 1MiB = %.0f, want ≈ %.0f", got, 1/wantSec)
	}
}

// TestMatrixFallbackWithoutFit: with ϕ set but too few sized
// observations for a trustworthy fit, Rate must fall back to the legacy
// EWMA row — never to a garbage extrapolation.
func TestMatrixFallbackWithoutFit(t *testing.T) {
	m := NewMatrix(1, 1000, 0.2, 1, 1)
	m.SetPhi(1 << 20)
	// fitMinObs-1 observations: fit untrusted.
	for i := 0; i < fitMinObs-1; i++ {
		m.ObserveSized(0, CPU, int64(4096+i*4096), 0.001)
	}
	legacy := m.rows[0][CPU]
	if got := m.Rate(0, CPU); got != legacy {
		t.Fatalf("untrusted fit did not fall back: rate %.2f, legacy row %.2f", got, legacy)
	}

	// Plenty of observations but zero size spread (fixed-ϕ history):
	// intercept and slope are inseparable, the fit must stay untrusted.
	m2 := NewMatrix(1, 1000, 0.2, 1, 1)
	m2.SetPhi(1 << 20)
	for i := 0; i < 3*fitMinObs; i++ {
		m2.ObserveSized(0, CPU, 8192, 0.001)
	}
	if got, legacy := m2.Rate(0, CPU), m2.rows[0][CPU]; got != legacy {
		t.Fatalf("zero-spread fit did not fall back: rate %.2f, legacy row %.2f", got, legacy)
	}
}

// TestMatrixPhiZeroLegacy: SetPhi(0) is fixed-ϕ operation — the fits
// are bypassed even when trustworthy, preserving the paper's §4.2
// behavior for non-adaptive configs.
func TestMatrixPhiZeroLegacy(t *testing.T) {
	m := trainPhiMatrix()
	m.SetPhi(0)
	if got, legacy := m.Rate(0, CPU), m.rows[0][CPU]; got != legacy {
		t.Fatalf("ϕ=0 did not use the legacy row: rate %.2f, row %.2f", got, legacy)
	}
}

// TestHLSFollowsPhiCrossover: the scheduler end of the property — the
// same queued task is routed to the CPU at small ϕ and to the GPU at
// large ϕ, purely from SetPhi, with the matrix trained once up front.
func TestHLSFollowsPhiCrossover(t *testing.T) {
	m := trainPhiMatrix()
	h := NewHLS(1, m, 100)

	m.SetPhi(16 << 10)
	q := task.NewQueue()
	q.Push(&task.Task{Query: 0, ID: 1})
	if got := h.Next(q, GPU); got != nil {
		t.Fatalf("ϕ=16KiB: GPU worker took a CPU-preferred task %+v", got)
	}
	if got := h.Next(q, CPU); got == nil || got.ID != 1 {
		t.Fatalf("ϕ=16KiB: CPU worker did not take its task")
	}

	m.SetPhi(2 << 20)
	q2 := task.NewQueue()
	q2.Push(&task.Task{Query: 0, ID: 2})
	if got := h.Next(q2, CPU); got != nil {
		t.Fatalf("ϕ=2MiB: CPU worker stole a GPU-preferred task %+v", got)
	}
	if got := h.Next(q2, GPU); got == nil || got.ID != 2 {
		t.Fatalf("ϕ=2MiB: GPU worker did not take its task")
	}
}

// TestHLSPhiFlipMidStreamExactlyOnce: ϕ flipping across the crossover
// while two workers drain a shared queue — the ϕ-aware analogue of
// TestHLSFlipExactlyOnce. Every task handed out exactly once, scheduler
// invariants intact, no stale preference wedging either worker.
func TestHLSPhiFlipMidStreamExactlyOnce(t *testing.T) {
	const nTasks = 300
	m := trainPhiMatrix()
	h := NewHLS(1, m, 3)
	q := task.NewQueue()
	for i := 0; i < nTasks; i++ {
		q.Push(&task.Task{Query: 0, ID: int64(i)})
	}
	q.Close()

	got := make(map[int64]int)
	phis := []int{16 << 10, 2 << 20}
	taken := 0
	for q.Len() > 0 {
		m.SetPhi(phis[taken/5%2]) // flip every 5 selections
		tk := h.Next(q, CPU)
		if tk == nil {
			tk = h.Next(q, GPU)
		}
		if tk == nil {
			t.Fatal("both workers declined with tasks queued")
		}
		got[tk.ID]++
		taken++
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("invariants after %d selections: %v", taken, err)
		}
	}
	if len(got) != nTasks {
		t.Fatalf("selected %d distinct tasks, want %d", len(got), nTasks)
	}
	for id, n := range got {
		if n != 1 {
			t.Fatalf("task %d selected %d times", id, n)
		}
	}
}

// TestMatrixPhiWithBreakerPath: a CPU-pinned task (the breaker /
// quarantine path marks retried GPU work CPUOnly) must stay off the GPU
// regardless of what ϕ says the GPU's rate is — ϕ-awareness must not
// override fault routing.
func TestMatrixPhiWithBreakerPath(t *testing.T) {
	m := trainPhiMatrix()
	h := NewHLS(1, m, 100)
	m.SetPhi(2 << 20) // GPU strongly preferred at this ϕ

	q := task.NewQueue()
	q.Push(&task.Task{Query: 0, ID: 1, CPUOnly: true, Attempts: 1})
	if got := h.Next(q, GPU); got != nil {
		t.Fatalf("GPU worker took a CPU-pinned task at GPU-preferred ϕ: %+v", got)
	}
	if got := h.Next(q, CPU); got == nil || got.ID != 1 {
		t.Fatal("CPU worker did not take the pinned task")
	}
}
