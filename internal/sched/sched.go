// Package sched implements SABER's scheduling stage (paper §4.2): the
// query task throughput matrix and the heterogeneous (hybrid) lookahead
// scheduling algorithm, HLS (Alg. 1), plus the FCFS and Static baseline
// policies used in the paper's Fig. 15 comparison.
package sched

import (
	"sync"

	"saber/internal/task"
)

// Processor identifies a heterogeneous processor class: all CPU cores
// together count as one class; the GPGPU is the other.
type Processor uint8

// Processor classes.
const (
	CPU Processor = iota
	GPU
	numProcs
)

// String names the processor.
func (p Processor) String() string {
	if p == CPU {
		return "cpu"
	}
	return "gpu"
}

// Matrix is the query task throughput matrix C: for every query and
// processor, the observed rate of query tasks per second. It is updated
// continuously from task completions with an exponentially weighted
// moving average, so scheduling adapts to workload changes without an
// offline performance model.
type Matrix struct {
	mu    sync.RWMutex
	alpha float64
	rows  [][numProcs]float64
	seen  [][numProcs]bool
	// capacity converts one completion's service time into a class
	// throughput: the CPU class completes tasks on every core in
	// parallel, the GPGPU across its pipeline depth.
	capacity [numProcs]float64
}

// NewMatrix creates a matrix for n queries, initialised under the uniform
// assumption (paper §4.2) with the given rate for every entry.
func NewMatrix(n int, initialRate, alpha float64, cpuCapacity, gpuCapacity float64) *Matrix {
	m := &Matrix{
		alpha:    alpha,
		rows:     make([][numProcs]float64, n),
		seen:     make([][numProcs]bool, n),
		capacity: [numProcs]float64{cpuCapacity, gpuCapacity},
	}
	for i := range m.rows {
		m.rows[i] = [numProcs]float64{initialRate, initialRate}
	}
	return m
}

// Observe records a completed task of query q on processor p that took
// serviceSeconds of wall time.
func (m *Matrix) Observe(q int, p Processor, serviceSeconds float64) {
	if serviceSeconds <= 0 {
		return
	}
	rate := m.capacity[p] / serviceSeconds
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.seen[q][p] {
		// First real observation replaces the uniform prior outright.
		m.rows[q][p] = rate
		m.seen[q][p] = true
		return
	}
	m.rows[q][p] = m.alpha*rate + (1-m.alpha)*m.rows[q][p]
}

// Rate returns ρ(q, p).
func (m *Matrix) Rate(q int, p Processor) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.rows[q][p]
}

// Preferred returns the processor with the highest observed throughput
// for query q.
func (m *Matrix) Preferred(q int) Processor {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.rows[q][GPU] > m.rows[q][CPU] {
		return GPU
	}
	return CPU
}

// Snapshot returns a copy of the matrix rows (for logging and tests).
func (m *Matrix) Snapshot() [][numProcs]float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([][numProcs]float64, len(m.rows))
	copy(out, m.rows)
	return out
}

// Policy selects the next task a worker on processor p should execute.
// Implementations must be safe for concurrent use.
type Policy interface {
	// Next removes and returns the chosen task, or nil if the policy
	// declines every queued task for this processor right now.
	Next(q *task.Queue, p Processor) *task.Task
	// Name identifies the policy in logs and benchmarks.
	Name() string
}

// FCFS takes the queue head regardless of processor: the paper's
// first-come-first-served baseline. Tasks pinned to the CPU after a
// GPGPU failure are skipped by GPU workers.
type FCFS struct{}

// Next implements Policy.
func (FCFS) Next(q *task.Queue, p Processor) *task.Task {
	return q.Select(func(items []*task.Task) int {
		for i, t := range items {
			if p == GPU && t.CPUOnly {
				continue
			}
			return i
		}
		return -1
	})
}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Greedy always takes the first task whose preferred processor matches
// the worker — no lookahead, no switch threshold. It is the ablation
// baseline for HLS's delay estimation (BenchmarkAblationLookahead): a
// worker on the non-preferred processor idles even when it could finish
// queued work earlier.
type Greedy struct {
	C *Matrix
}

// Next implements Policy.
func (g Greedy) Next(q *task.Queue, p Processor) *task.Task {
	return q.Select(func(items []*task.Task) int {
		for i, t := range items {
			if p == GPU && t.CPUOnly {
				continue
			}
			if t.CPUOnly || g.C.Preferred(t.Query) == p {
				return i
			}
		}
		return -1
	})
}

// Name implements Policy.
func (g Greedy) Name() string { return "greedy" }

// Static executes each query's tasks only on its statically assigned
// processor (the paper's infeasible-in-practice baseline).
type Static struct {
	// Assign maps query index to processor.
	Assign []Processor
}

// Next implements Policy.
func (s Static) Next(q *task.Queue, p Processor) *task.Task {
	return q.Select(func(items []*task.Task) int {
		for i, t := range items {
			if p == GPU && t.CPUOnly {
				continue
			}
			if (t.CPUOnly && p == CPU) || s.Assign[t.Query] == p {
				return i
			}
		}
		return -1
	})
}

// Name implements Policy.
func (s Static) Name() string { return "static" }
