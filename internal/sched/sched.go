// Package sched implements SABER's scheduling stage (paper §4.2): the
// query task throughput matrix and the heterogeneous (hybrid) lookahead
// scheduling algorithm, HLS (Alg. 1), plus the FCFS and Static baseline
// policies used in the paper's Fig. 15 comparison.
package sched

import (
	"sync"
	"sync/atomic"

	"saber/internal/task"
)

// Processor identifies a heterogeneous processor class: all CPU cores
// together count as one class; the GPGPU is the other.
type Processor uint8

// Processor classes.
const (
	CPU Processor = iota
	GPU
	numProcs
)

// String names the processor.
func (p Processor) String() string {
	if p == CPU {
		return "cpu"
	}
	return "gpu"
}

// Matrix is the query task throughput matrix C: for every query and
// processor, the observed rate of query tasks per second. It is updated
// continuously from task completions with an exponentially weighted
// moving average, so scheduling adapts to workload changes without an
// offline performance model.
//
// With adaptive task sizing the matrix is additionally ϕ-aware: sized
// observations (ObserveSized) feed a per-(query, processor) linear
// service-time model service(ϕ) ≈ a + b·ϕ, and Rate evaluates that
// model at the engine's current ϕ (SetPhi) instead of replaying the
// rate observed at whatever size history happened to run. The GPU's
// large fixed a (launch + DMA staging) against the CPU's small one is
// exactly what moves the CPU/GPU crossover as ϕ changes. Entries whose
// fit is not yet trustworthy fall back to the legacy EWMA row, so the
// matrix degrades gracefully to the paper's §4.2 behavior.
type Matrix struct {
	// phi is the engine's current task size in bytes; 0 means fixed-ϕ
	// operation (legacy rows only). Atomic because the adapt control
	// loop stores it while workers read rates.
	phi atomic.Int64

	mu       sync.RWMutex
	alpha    float64
	initRate float64
	rows     [][numProcs]float64
	seen     [][numProcs]bool
	fits     [][numProcs]fit
	// capacity converts one completion's service time into a class
	// throughput: the CPU class completes tasks on every core in
	// parallel, the GPGPU across its pipeline depth.
	capacity [numProcs]float64
}

// fit is the EWMA-moment linear regression of service time on task
// bytes for one (query, processor) entry: it tracks the running means
// of x, y, x² and x·y and solves service(x) ≈ a + b·x on demand. EWMA
// moments (rather than a plain least squares over all history) keep the
// fit tracking workload drift with the same time constant as the rows.
type fit struct {
	n                int64
	mx, my, mxx, mxy float64
}

// fitMinObs is the fewest sized observations before a fit is trusted.
const fitMinObs = 8

func (f *fit) observe(alpha, x, y float64) {
	f.n++
	if f.n == 1 {
		f.mx, f.my, f.mxx, f.mxy = x, y, x*x, x*y
		return
	}
	f.mx = alpha*x + (1-alpha)*f.mx
	f.my = alpha*y + (1-alpha)*f.my
	f.mxx = alpha*x*x + (1-alpha)*f.mxx
	f.mxy = alpha*x*y + (1-alpha)*f.mxy
}

// serviceAt predicts the service seconds for a task of x bytes, or
// ok=false when the fit is untrustworthy: too few observations, or the
// observed sizes lack the spread (≥5% of their mean) needed to separate
// the intercept from the slope.
func (f *fit) serviceAt(x float64) (float64, bool) {
	if f.n < fitMinObs {
		return 0, false
	}
	varx := f.mxx - f.mx*f.mx
	if spread := 0.05 * f.mx; varx <= spread*spread {
		return 0, false
	}
	b := (f.mxy - f.mx*f.my) / varx
	if b < 0 {
		b = 0 // service time cannot shrink with batch size
	}
	a := f.my - b*f.mx
	if a < 0 {
		a = 0
	}
	sec := a + b*x
	if sec <= 0 {
		return 0, false
	}
	return sec, true
}

// NewMatrix creates a matrix for n queries, initialised under the uniform
// assumption (paper §4.2) with the given rate for every entry.
func NewMatrix(n int, initialRate, alpha float64, cpuCapacity, gpuCapacity float64) *Matrix {
	m := &Matrix{
		alpha:    alpha,
		initRate: initialRate,
		rows:     make([][numProcs]float64, n),
		seen:     make([][numProcs]bool, n),
		fits:     make([][numProcs]fit, n),
		capacity: [numProcs]float64{cpuCapacity, gpuCapacity},
	}
	for i := range m.rows {
		m.rows[i] = [numProcs]float64{initialRate, initialRate}
	}
	return m
}

// Grow extends the matrix to cover queries registered after Start (the
// live-catalog path): rows for query indices up to n-1 are appended under
// the uniform prior. Growing never disturbs existing rows, and shrinking
// is not supported — a deregistered query keeps its row as a tombstone so
// indices stay dense.
func (m *Matrix) Grow(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.rows) < n {
		m.rows = append(m.rows, [numProcs]float64{m.initRate, m.initRate})
		m.seen = append(m.seen, [numProcs]bool{})
		m.fits = append(m.fits, [numProcs]fit{})
	}
}

// SetPhi publishes the engine's current task size so Rate evaluates the
// service-time fits at the ϕ tasks will actually have — not the sizes
// past observations happened to carry. 0 disables ϕ-aware rates.
func (m *Matrix) SetPhi(phi int) { m.phi.Store(int64(phi)) }

// Phi returns the task size the matrix currently evaluates rates at.
func (m *Matrix) Phi() int { return int(m.phi.Load()) }

// Observe records a completed task of query q on processor p that took
// serviceSeconds of wall time, with no size attached (fixed-ϕ callers).
func (m *Matrix) Observe(q int, p Processor, serviceSeconds float64) {
	m.ObserveSized(q, p, 0, serviceSeconds)
}

// ObserveSized records a completed task of query q on processor p that
// carried bytes of input and took serviceSeconds of wall time. The
// legacy EWMA row always updates; the linear fit additionally updates
// when the size is known.
func (m *Matrix) ObserveSized(q int, p Processor, bytes int64, serviceSeconds float64) {
	if serviceSeconds <= 0 {
		return
	}
	rate := m.capacity[p] / serviceSeconds
	m.mu.Lock()
	defer m.mu.Unlock()
	if bytes > 0 {
		m.fits[q][p].observe(m.alpha, float64(bytes), serviceSeconds)
	}
	if !m.seen[q][p] {
		// First real observation replaces the uniform prior outright.
		m.rows[q][p] = rate
		m.seen[q][p] = true
		return
	}
	m.rows[q][p] = m.alpha*rate + (1-m.alpha)*m.rows[q][p]
}

// SeedRates primes query q's row with rates carried over from a
// checkpoint, marking them seen so the uniform prior does not linger: the
// restored engine resumes scheduling with the crashed process's learned
// CPU/GPU throughputs instead of re-learning from scratch. Non-positive
// rates leave the corresponding entry at the prior.
func (m *Matrix) SeedRates(q int, cpu, gpu float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if q < 0 || q >= len(m.rows) {
		return
	}
	if cpu > 0 {
		m.rows[q][CPU] = cpu
		m.seen[q][CPU] = true
	}
	if gpu > 0 {
		m.rows[q][GPU] = gpu
		m.seen[q][GPU] = true
	}
}

// Rate returns ρ(q, p), evaluated at the current ϕ when a trustworthy
// service-time fit exists and falling back to the legacy EWMA row
// otherwise. Because the fit is evaluated live on every call, a SetPhi
// immediately re-rates every queued decision — there are no per-ϕ rows
// to go stale.
func (m *Matrix) Rate(q int, p Processor) float64 {
	phi := float64(m.phi.Load())
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.rate(q, p, phi)
}

// rate is Rate with m.mu already held (read) and ϕ pre-loaded.
func (m *Matrix) rate(q int, p Processor, phi float64) float64 {
	if phi > 0 {
		if sec, ok := m.fits[q][p].serviceAt(phi); ok {
			return m.capacity[p] / sec
		}
	}
	return m.rows[q][p]
}

// Preferred returns the processor with the highest throughput for query
// q at the current ϕ.
func (m *Matrix) Preferred(q int) Processor {
	phi := float64(m.phi.Load())
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.rate(q, GPU, phi) > m.rate(q, CPU, phi) {
		return GPU
	}
	return CPU
}

// Snapshot returns a copy of the matrix rows (for logging and tests).
func (m *Matrix) Snapshot() [][numProcs]float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([][numProcs]float64, len(m.rows))
	copy(out, m.rows)
	return out
}

// Policy selects the next task a worker on processor p should execute.
// Implementations must be safe for concurrent use.
type Policy interface {
	// Next removes and returns the chosen task, or nil if the policy
	// declines every queued task for this processor right now.
	Next(q *task.Queue, p Processor) *task.Task
	// Name identifies the policy in logs and benchmarks.
	Name() string
}

// FCFS takes the queue head regardless of processor: the paper's
// first-come-first-served baseline. Tasks pinned to the CPU after a
// GPGPU failure are skipped by GPU workers.
type FCFS struct{}

// Next implements Policy.
func (FCFS) Next(q *task.Queue, p Processor) *task.Task {
	return q.Select(func(items []*task.Task) int {
		for i, t := range items {
			if p == GPU && t.CPUOnly {
				continue
			}
			return i
		}
		return -1
	})
}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Greedy always takes the first task whose preferred processor matches
// the worker — no lookahead, no switch threshold. It is the ablation
// baseline for HLS's delay estimation (BenchmarkAblationLookahead): a
// worker on the non-preferred processor idles even when it could finish
// queued work earlier.
type Greedy struct {
	C *Matrix
}

// Next implements Policy.
func (g Greedy) Next(q *task.Queue, p Processor) *task.Task {
	return q.Select(func(items []*task.Task) int {
		for i, t := range items {
			if p == GPU && t.CPUOnly {
				continue
			}
			if t.CPUOnly || g.C.Preferred(t.Query) == p {
				return i
			}
		}
		return -1
	})
}

// Name implements Policy.
func (g Greedy) Name() string { return "greedy" }

// Static executes each query's tasks only on its statically assigned
// processor (the paper's infeasible-in-practice baseline).
type Static struct {
	// Assign maps query index to processor.
	Assign []Processor
}

// Next implements Policy.
func (s Static) Next(q *task.Queue, p Processor) *task.Task {
	return q.Select(func(items []*task.Task) int {
		for i, t := range items {
			if p == GPU && t.CPUOnly {
				continue
			}
			if (t.CPUOnly && p == CPU) || s.Assign[t.Query] == p {
				return i
			}
		}
		return -1
	})
}

// Name implements Policy.
func (s Static) Name() string { return "static" }
