package sched

import (
	"math"
	"testing"

	"saber/internal/task"
)

func fig5Matrix() *Matrix {
	// Paper Fig. 5: q1: CPU 50, GPU 20; q2: CPU 5, GPU 15; q3: CPU 20, GPU 30.
	m := NewMatrix(3, 1, 0.2, 1, 1)
	m.rows[0] = [numProcs]float64{50, 20}
	m.rows[1] = [numProcs]float64{5, 15}
	m.rows[2] = [numProcs]float64{20, 30}
	for i := range m.seen {
		m.seen[i] = [numProcs]bool{true, true}
	}
	return m
}

func fig5Queue() *task.Queue {
	q := task.NewQueue()
	// Head first: v1 q2, v2 q2, v3 q3, v4 q3, v5 q1, v6 q2, v7 q1, v8 q2.
	for i, qi := range []int{1, 1, 2, 2, 0, 1, 0, 1} {
		q.Push(&task.Task{Query: qi, ID: int64(i + 1)})
	}
	return q
}

// TestFig5GPUWorker: a GPGPU worker takes the queue head v1 because the
// GPGPU is q2's preferred processor.
func TestFig5GPUWorker(t *testing.T) {
	h := NewHLS(3, fig5Matrix(), 100)
	got := h.Next(fig5Queue(), GPU)
	if got == nil || got.ID != 1 {
		t.Fatalf("GPU worker selected %+v, want v1", got)
	}
}

// TestFig5CPUWorkerLookahead: a CPU worker skips the GPGPU-preferred
// tasks until the accumulated GPGPU delay makes CPU execution finish
// earlier. Under the literal Alg. 1 condition (delay ≥ 1/C(q,CPU),
// checked before adding the current task's own service time) the first
// q3 task already qualifies: after skipping v1 and v2 the delay is
// 2/15 ≈ 0.133 ≥ 1/20. The prose walkthrough in the paper selects v4
// instead of v3; the pseudocode as printed selects v3 — we implement the
// pseudocode and pin its behaviour here.
func TestFig5CPUWorkerLookahead(t *testing.T) {
	h := NewHLS(3, fig5Matrix(), 100)
	got := h.Next(fig5Queue(), CPU)
	if got == nil || got.ID != 3 || got.Query != 2 {
		t.Fatalf("CPU worker selected %+v, want v3 (first q3 task)", got)
	}
}

// TestCPUWorkerSkipsWhenDelaySmall: with only GPGPU-preferred work and no
// accumulated delay beating CPU service time, the CPU worker declines.
func TestCPUWorkerSkipsWhenDelaySmall(t *testing.T) {
	m := NewMatrix(1, 1, 0.2, 1, 1)
	m.rows[0] = [numProcs]float64{1, 1000} // GPU vastly preferred, CPU slow
	m.seen[0] = [numProcs]bool{true, true}
	h := NewHLS(1, m, 100)
	q := task.NewQueue()
	q.Push(&task.Task{Query: 0, ID: 1})
	if got := h.Next(q, CPU); got != nil {
		t.Fatalf("CPU worker stole a GPU task: %+v", got)
	}
	if q.Len() != 1 {
		t.Fatal("declined task was removed")
	}
	if got := h.Next(q, GPU); got == nil || got.ID != 1 {
		t.Fatalf("GPU worker did not take its task")
	}
}

// TestCPUWorkerTakesRetriedGPUTask: a task whose prior attempt failed
// bypasses the switch-threshold gate. After the queue closes, the GPU
// worker may already have exited when a CPU-side failure requeues the
// task, and a lone GPU-preferred retry has no streak and no accumulated
// delay — gating it (as for a fresh task, see
// TestCPUWorkerSkipsWhenDelaySmall) would wedge Drain forever.
func TestCPUWorkerTakesRetriedGPUTask(t *testing.T) {
	m := NewMatrix(1, 1, 0.2, 1, 1)
	m.rows[0] = [numProcs]float64{1, 1000} // GPU vastly preferred, CPU slow
	m.seen[0] = [numProcs]bool{true, true}
	h := NewHLS(1, m, 100)
	q := task.NewQueue()
	q.Push(&task.Task{Query: 0, ID: 1, Attempts: 1})
	if got := h.Next(q, CPU); got == nil || got.ID != 1 {
		t.Fatalf("CPU worker declined a retried GPU-preferred task: %+v", got)
	}
}

// TestSwitchThresholdForcesExploration: after St runs on the preferred
// processor, the task must go to the other one (and the streak resets).
func TestSwitchThresholdForcesExploration(t *testing.T) {
	m := NewMatrix(1, 1, 0.2, 1, 1)
	m.rows[0] = [numProcs]float64{100, 1}
	m.seen[0] = [numProcs]bool{true, true}
	h := NewHLS(1, m, 3)

	q := task.NewQueue()
	for i := 0; i < 8; i++ {
		q.Push(&task.Task{Query: 0, ID: int64(i)})
	}
	var procs []Processor
	for q.Len() > 0 {
		if tk := h.Next(q, CPU); tk != nil {
			procs = append(procs, CPU)
			continue
		}
		if tk := h.Next(q, GPU); tk != nil {
			procs = append(procs, GPU)
			continue
		}
		t.Fatal("both processors declined")
	}
	// CPU preferred: three on CPU, then the threshold forces one to GPU,
	// then the streak restarts.
	want := []Processor{CPU, CPU, CPU, GPU, CPU, CPU, CPU, GPU}
	for i := range want {
		if procs[i] != want[i] {
			t.Fatalf("schedule = %v, want %v", procs, want)
		}
	}
}

func TestMatrixObserveEWMA(t *testing.T) {
	m := NewMatrix(1, 10, 0.5, 15, 4)
	if m.Rate(0, CPU) != 10 || m.Rate(0, GPU) != 10 {
		t.Fatal("uniform prior missing")
	}
	// First observation replaces the prior: 15 workers / 0.1 s = 150.
	m.Observe(0, CPU, 0.1)
	if got := m.Rate(0, CPU); math.Abs(got-150) > 1e-9 {
		t.Fatalf("rate after first obs = %g", got)
	}
	// Second observation: EWMA(α=0.5) of 150 and 15/0.05=300 → 225.
	m.Observe(0, CPU, 0.05)
	if got := m.Rate(0, CPU); math.Abs(got-225) > 1e-9 {
		t.Fatalf("rate after second obs = %g", got)
	}
	// GPU capacity differs.
	m.Observe(0, GPU, 0.1)
	if got := m.Rate(0, GPU); math.Abs(got-40) > 1e-9 {
		t.Fatalf("gpu rate = %g", got)
	}
	m.Observe(0, GPU, 0) // ignored
	if got := m.Rate(0, GPU); math.Abs(got-40) > 1e-9 {
		t.Fatalf("zero-duration observation changed rate: %g", got)
	}
	if m.Preferred(0) != CPU {
		t.Fatal("Preferred wrong")
	}
	if len(m.Snapshot()) != 1 {
		t.Fatal("Snapshot wrong")
	}
}

func TestAdaptationFlipsPreference(t *testing.T) {
	m := NewMatrix(1, 1, 0.5, 1, 1)
	for i := 0; i < 10; i++ {
		m.Observe(0, CPU, 0.01) // 100/s
		m.Observe(0, GPU, 0.1)  // 10/s
	}
	if m.Preferred(0) != CPU {
		t.Fatal("CPU should be preferred initially")
	}
	// Workload change: CPU collapses.
	for i := 0; i < 20; i++ {
		m.Observe(0, CPU, 1.0)
	}
	if m.Preferred(0) != GPU {
		t.Fatalf("preference did not adapt: cpu=%g gpu=%g", m.Rate(0, CPU), m.Rate(0, GPU))
	}
}

func TestFCFS(t *testing.T) {
	q := fig5Queue()
	p := FCFS{}
	if p.Name() != "fcfs" {
		t.Fatal("name")
	}
	first := p.Next(q, CPU)
	second := p.Next(q, GPU)
	if first.ID != 1 || second.ID != 2 {
		t.Fatalf("FCFS order broken: %d then %d", first.ID, second.ID)
	}
}

func TestStatic(t *testing.T) {
	s := Static{Assign: []Processor{CPU, GPU, CPU}}
	if s.Name() != "static" {
		t.Fatal("name")
	}
	q := fig5Queue() // head v1 is q2 (index 1) → GPU
	if got := s.Next(q, CPU); got == nil || got.Query == 1 {
		t.Fatalf("static CPU pick = %+v", got)
	}
	if got := s.Next(q, GPU); got == nil || got.Query != 1 {
		t.Fatalf("static GPU pick = %+v", got)
	}
	empty := task.NewQueue()
	if s.Next(empty, CPU) != nil {
		t.Fatal("pick from empty queue")
	}
}

func TestQueueBasics(t *testing.T) {
	q := task.NewQueue()
	if q.PopHead() != nil || q.Len() != 0 {
		t.Fatal("empty queue misbehaves")
	}
	q.Push(&task.Task{ID: 1})
	q.Push(&task.Task{ID: 2})
	if q.Len() != 2 {
		t.Fatal("Len")
	}
	if got := q.Select(func(items []*task.Task) int { return 1 }); got.ID != 2 {
		t.Fatal("Select by index")
	}
	if got := q.Select(func(items []*task.Task) int { return 99 }); got != nil {
		t.Fatal("out-of-range index not ignored")
	}
	if q.Closed() {
		t.Fatal("fresh queue closed")
	}
	q.Close()
	if !q.Closed() {
		t.Fatal("Close")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Push after Close did not panic")
		}
	}()
	q.Push(&task.Task{ID: 3})
}

func TestHLSResetCounts(t *testing.T) {
	m := fig5Matrix()
	h := NewHLS(3, m, 1)
	q := fig5Queue()
	h.Next(q, GPU)
	h.ResetCounts()
	// After reset, the streak restriction is cleared: the GPU worker can
	// take the next q2 task again despite St == 1.
	if got := h.Next(q, GPU); got == nil || got.Query != 1 {
		t.Fatalf("post-reset pick = %+v", got)
	}
}
