package sched

import (
	"runtime"
	"sync"
	"testing"

	"saber/internal/task"
)

// TestHLSFlipExactlyOnce drives HLS from two concurrent workers — one
// per processor class — while the throughput matrix's preference is
// flipped back and forth mid-stream, and asserts the scheduler's core
// safety property: every queued task is handed out exactly once (no task
// lost, none double-executed), no matter how often the preferred backend
// changes under the workers' feet. It also verifies the forced-switch
// counter and the scheduler's own invariants along the way.
func TestHLSFlipExactlyOnce(t *testing.T) {
	const nTasks = 400
	m := NewMatrix(1, 1000, 0.5, 1, 1)
	h := NewHLS(1, m, 3)
	q := task.NewQueue()
	for i := 0; i < nTasks; i++ {
		q.Push(&task.Task{Query: 0, ID: int64(i)})
	}
	q.Close()

	var mu sync.Mutex
	got := make(map[int64]int)
	var wg sync.WaitGroup
	for _, p := range []Processor{CPU, GPU} {
		wg.Add(1)
		go func(p Processor) {
			defer wg.Done()
			other := CPU
			if p == CPU {
				other = GPU
			}
			taken := 0
			for {
				tk := h.Next(q, p)
				if tk == nil {
					if q.Len() == 0 {
						return
					}
					runtime.Gosched()
					continue
				}
				mu.Lock()
				got[tk.ID]++
				mu.Unlock()
				taken++
				if taken%7 == 0 {
					// Flip the preference towards the other class: a fast
					// observation there, a slow one here. The scheduler
					// must re-route without dropping queued work.
					m.Observe(0, other, 0.0001)
					m.Observe(0, p, 0.1)
				}
				if err := h.CheckInvariants(); err != nil {
					t.Errorf("mid-run invariants on %s: %v", p, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	if len(got) != nTasks {
		t.Fatalf("selected %d distinct tasks, want %d (tasks lost)", len(got), nTasks)
	}
	for id, n := range got {
		if n != 1 {
			t.Fatalf("task %d selected %d times (double execution)", id, n)
		}
	}
	if h.Selected() != nTasks {
		t.Fatalf("Selected() = %d, want %d", h.Selected(), nTasks)
	}
	if h.Flips() == 0 {
		t.Fatal("preference flipping never forced a backend switch")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("final invariants: %v", err)
	}
	t.Logf("selected %d tasks with %d forced backend switches", h.Selected(), h.Flips())
}

// TestHLSFlipWithLookahead repeats the exactly-once property with a
// bounded lookahead (as the engine configures it, tied to the result
// buffer size): bounding the scan must never strand tasks at the head of
// the queue.
func TestHLSFlipWithLookahead(t *testing.T) {
	const nTasks = 200
	m := NewMatrix(2, 1000, 0.5, 1, 1)
	h := NewHLS(2, m, 2)
	h.MaxLookahead = 4
	q := task.NewQueue()
	for i := 0; i < nTasks; i++ {
		q.Push(&task.Task{Query: i % 2, ID: int64(i)})
	}
	q.Close()

	var mu sync.Mutex
	seen := 0
	var wg sync.WaitGroup
	for _, p := range []Processor{CPU, GPU} {
		wg.Add(1)
		go func(p Processor) {
			defer wg.Done()
			for {
				tk := h.Next(q, p)
				if tk == nil {
					if q.Len() == 0 {
						return
					}
					runtime.Gosched()
					continue
				}
				mu.Lock()
				seen++
				mu.Unlock()
				m.Observe(tk.Query, p, 0.001)
			}
		}(p)
	}
	wg.Wait()
	if seen != nTasks {
		t.Fatalf("selected %d tasks, want %d", seen, nTasks)
	}
}
