package sched

import (
	"testing"
	"time"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		b.RecordFailure(false)
		if b.State() != BreakerClosed {
			t.Fatalf("opened after %d failures", i+1)
		}
	}
	b.RecordFailure(false)
	if b.State() != BreakerOpen {
		t.Fatal("did not open at threshold")
	}
	if allow, _ := b.Acquire(); allow {
		t.Fatal("open breaker granted a task")
	}
	if b.Rejected() != 1 || b.Opens() != 1 {
		t.Fatalf("telemetry: rejected=%d opens=%d", b.Rejected(), b.Opens())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	b.RecordFailure(false)
	b.RecordFailure(false)
	b.RecordSuccess(false)
	b.RecordFailure(false)
	b.RecordFailure(false)
	if b.State() != BreakerClosed {
		t.Fatal("streak not reset by success")
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b := NewBreaker(1, time.Millisecond)
	b.RecordFailure(false)
	if b.State() != BreakerOpen {
		t.Fatal("did not open")
	}
	time.Sleep(2 * time.Millisecond)

	allow, probe := b.Acquire()
	if !allow || !probe {
		t.Fatalf("cooldown elapsed but no probe: allow=%v probe=%v", allow, probe)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after probe grant", b.State())
	}
	// Only one probe may be out.
	if allow2, _ := b.Acquire(); allow2 {
		t.Fatal("second probe granted")
	}
	b.RecordSuccess(probe)
	if b.State() != BreakerClosed || b.Closes() != 1 {
		t.Fatalf("probe success did not close: %v closes=%d", b.State(), b.Closes())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b := NewBreaker(1, time.Millisecond)
	b.RecordFailure(false)
	time.Sleep(2 * time.Millisecond)
	_, probe := b.Acquire()
	b.RecordFailure(probe)
	if b.State() != BreakerOpen {
		t.Fatalf("probe failure left state %v", b.State())
	}
	if b.Opens() != 2 {
		t.Fatalf("opens=%d", b.Opens())
	}
}

func TestBreakerCancelProbe(t *testing.T) {
	b := NewBreaker(1, time.Millisecond)
	b.RecordFailure(false)
	time.Sleep(2 * time.Millisecond)
	_, probe := b.Acquire()
	if !probe {
		t.Fatal("no probe granted")
	}
	b.CancelProbe(probe)
	// The returned grant must be immediately re-acquirable.
	allow, probe2 := b.Acquire()
	if !allow || !probe2 {
		t.Fatal("cancelled probe not re-grantable")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBreakerNonProbeFailureWhileHalfOpen: an older in-flight task —
// submitted before the breaker opened, failing or timing out after the
// probe was granted — reopens a half-open breaker. The probe grant must
// be invalidated with the transition: probeOut may only be set while
// half-open (the invariant the harness polls concurrently), and the
// orphaned grant must not permit a second concurrent probe after the
// next cooldown.
func TestBreakerNonProbeFailureWhileHalfOpen(t *testing.T) {
	b := NewBreaker(1, time.Millisecond)
	b.RecordFailure(false)
	time.Sleep(2 * time.Millisecond)
	_, probe := b.Acquire()
	if !probe {
		t.Fatal("no probe granted")
	}
	b.RecordFailure(false) // the older in-flight task fails, not the probe
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after non-probe failure in half-open", b.State())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("reopening orphaned the probe grant: %v", err)
	}
	time.Sleep(2 * time.Millisecond)
	if allow, probe2 := b.Acquire(); !allow || !probe2 {
		t.Fatal("no probe after the reopen cooldown")
	}
	if allow, _ := b.Acquire(); allow {
		t.Fatal("orphaned grant permitted a second concurrent probe")
	}
	// The stale first probe eventually resolving is handled as an
	// ordinary completion: any success closes the breaker.
	b.RecordSuccess(probe)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after stale probe success", b.State())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if allow, probe := b.Acquire(); !allow || probe {
		t.Fatal("nil breaker must always allow")
	}
	b.RecordSuccess(false)
	b.RecordFailure(true)
	b.CancelProbe(true)
	if b.State() != BreakerClosed || b.Opens() != 0 || b.Closes() != 0 || b.Probes() != 0 || b.Rejected() != 0 {
		t.Fatal("nil breaker telemetry not zero")
	}
}
