package sched

import (
	"sync"
	"sync/atomic"

	"saber/internal/task"
)

// HLS is the heterogeneous lookahead scheduling algorithm (paper Alg. 1).
//
// A worker that became idle on processor p scans the system-wide queue in
// order. For each task it determines the preferred processor from the
// throughput matrix. The task is selected when
//
//   - p is preferred and the query's run streak on p is below the switch
//     threshold, or
//   - p is not preferred, but either the streak on the preferred
//     processor reached the switch threshold (forcing exploration), or
//     the work already queued ahead for the preferred processor delays
//     this task by more than executing it here would take.
//
// Otherwise the task is planned for the other processor: its estimated
// service time is added to that processor's accumulated delay and the
// scan moves on. The switch threshold guarantees both matrix columns keep
// receiving fresh observations.
type HLS struct {
	C  *Matrix
	St int // switch threshold
	// MaxLookahead bounds how deep into the queue the scan reaches
	// (0 = unbounded). The engine sets it below the result-buffer size so
	// out-of-order execution stays within the reordering window.
	MaxLookahead int
	// Breaker, when set, is the GPGPU circuit breaker. While it is not
	// closed, every task is routed as CPU-preferred (graceful
	// degradation via the same switch-threshold machinery); in the
	// half-open state a GPU worker's scan takes the first eligible task
	// as the recovery probe.
	Breaker *Breaker

	mu    sync.Mutex
	count [][numProcs]int

	// selected counts tasks handed to workers; flips counts forced
	// backend switches (streak reached the switch threshold). Telemetry
	// for the stress harness; see invariant.go.
	selected atomic.Int64
	flips    atomic.Int64
}

// NewHLS creates the scheduler for n queries with the given matrix and
// switch threshold.
func NewHLS(n int, c *Matrix, st int) *HLS {
	return &HLS{C: c, St: st, count: make([][numProcs]int, n)}
}

// Grow extends the per-query streak table to cover queries registered
// after Start. Must be called (with the matrix grown first) before any
// task of a new query index reaches the queue.
func (h *HLS) Grow(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.count) < n {
		h.count = append(h.count, [numProcs]int{})
	}
}

// Name implements Policy.
func (h *HLS) Name() string { return "hls" }

// Next implements Policy with Alg. 1. It returns nil when no queued task
// should run on p yet (the worker re-invokes after a short wait, which
// plays the role of the algorithm's implicit re-entry).
func (h *HLS) Next(q *task.Queue, p Processor) *task.Task {
	h.mu.Lock()
	defer h.mu.Unlock()
	brState := BreakerClosed
	if h.Breaker != nil {
		brState = h.Breaker.State()
	}
	return q.Select(func(items []*task.Task) int {
		if h.MaxLookahead > 0 && len(items) > h.MaxLookahead {
			items = items[:h.MaxLookahead]
		}
		if p == GPU && brState == BreakerHalfOpen {
			// Recovery probe: take the first task not pinned to the CPU,
			// regardless of preference, so the probe cannot starve behind
			// a matrix that currently prefers the CPU everywhere.
			for pos, v := range items {
				if !v.CPUOnly {
					h.count[v.Query][p]++
					h.selected.Add(1)
					return pos
				}
			}
			return -1
		}
		delay := 0.0
		for pos, v := range items {
			qi := v.Query
			if p == GPU && v.CPUOnly {
				// A failed-over task never returns to the device; plan it
				// for the CPU and keep scanning.
				delay += 1 / h.C.Rate(qi, CPU)
				continue
			}
			pref := h.C.Preferred(qi)
			// A pinned task (failed over to the CPU, or degraded there by an
			// open breaker) must not be gated by the switch-threshold streak:
			// the streak exists to keep the other matrix column fresh, and a
			// pinned task cannot provide a GPU observation. Gating it would
			// livelock — the GPU side can neither take the task nor trigger
			// the forced switch that resets the CPU streak.
			pinned := v.CPUOnly || (p == CPU && brState != BreakerClosed)
			if pinned {
				pref = CPU
			}

			// A retried task (a prior attempt failed) also bypasses the
			// gate, on whichever processor scans first: after the queue
			// closes, the preferred backend's worker may already have
			// exited — it saw an empty queue before the failure requeued
			// the task — and a lone GPU-preferred retry has no streak and
			// no accumulated delay, so gating it would wedge Drain.
			retry := v.Attempts > 0

			selected := false
			if p == pref {
				selected = pinned || retry || h.count[qi][p] < h.St
			} else {
				selected = retry || h.count[qi][pref] >= h.St || delay >= 1/h.C.Rate(qi, p)
			}
			if selected {
				if p != pref && h.count[qi][pref] >= h.St {
					h.count[qi][pref] = 0 // reset after forced switch
					h.flips.Add(1)
				}
				h.count[qi][p]++
				h.selected.Add(1)
				return pos
			}
			// Planned for the preferred processor: accumulate the work
			// queued ahead of it.
			delay += 1 / h.C.Rate(qi, pref)
		}
		return -1
	})
}

// ResetCounts clears the per-query execution streaks (for tests).
func (h *HLS) ResetCounts() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.count {
		h.count[i] = [numProcs]int{}
	}
}
