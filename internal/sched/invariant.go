package sched

import "fmt"

// Invariant hooks for the stress harness (internal/harness). HLS
// satisfies the inv.Checker contract structurally.

// Selected returns the number of tasks HLS has handed to workers.
func (h *HLS) Selected() int64 { return h.selected.Load() }

// Flips returns the number of forced backend switches: selections where a
// query's run streak on its preferred processor had reached the switch
// threshold, sending the task to the other processor class. The harness
// uses it to prove a hybrid stress run really flipped backends mid-stream.
func (h *HLS) Flips() int64 { return h.flips.Load() }

// InvariantName implements the inv.Checker contract.
func (h *HLS) InvariantName() string { return "sched.hls" }

// CheckInvariants verifies the scheduler's bookkeeping:
//
//   - run streaks are non-negative and no streak exceeds the total number
//     of selections (a streak only grows by one per selection);
//   - the streak on a processor never exceeds the switch threshold when
//     that processor is currently preferred would be racy to assert (the
//     preference moves with the matrix), so only the stable bound
//     streak <= selected is checked alongside non-negativity.
func (h *HLS) CheckInvariants() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Selections mutate streaks and the counter under h.mu, so reading
	// both under the lock yields a consistent snapshot.
	total := h.selected.Load()
	for qi := range h.count {
		for p := 0; p < int(numProcs); p++ {
			c := h.count[qi][p]
			if c < 0 {
				return fmt.Errorf("query %d: negative run streak %d on %s", qi, c, Processor(p))
			}
			if int64(c) > total {
				return fmt.Errorf("query %d: run streak %d on %s exceeds %d total selections",
					qi, c, Processor(p), total)
			}
		}
	}
	return nil
}
