// Package obs is SABER's unified observability subsystem: a
// zero-allocation metrics core (sharded counters, gauges and log-scale
// latency histograms), per-task pipeline tracing, and the snapshot /
// admin-endpoint machinery that exposes a running engine.
//
// Every subsystem reports through one Registry tree under a canonical
// dotted naming scheme:
//
//	saber.<subsystem>[.q<query>][.in<input>].<noun>[.<noun>...]
//
// e.g. saber.engine.q0.result.overflow, saber.sched.hls.flips,
// saber.gpu.bytes.moved, saber.trace.e2e. The q<i>/in<j> segments carry
// instance identity; the Prometheus renderer lifts them into labels
// (query="0", input="1") so one time series family covers all queries.
//
// Three metric kinds cover the hot paths:
//
//   - Counter: a monotonic, cache-line-sharded atomic counter. Add is
//     lock-free and allocation-free; Value sums the shards.
//   - Gauge: a point-in-time atomic value, plus func-backed variants
//     (RegisterFunc / RegisterFloatFunc) that mirror telemetry a
//     subsystem already keeps in its own atomics — the registry reads
//     them only at snapshot time, so mirroring costs nothing on the hot
//     path.
//   - Histogram: fixed-bucket log₂-scale distribution with 8 sub-buckets
//     per octave (≤12.5% relative bucket error). Observe is two atomic
//     adds; Snapshot never blocks writers.
//
// Registration takes a lock; observation never does. Snapshot reads
// every value with atomic loads, so it is safe (and race-clean) against
// concurrent writers without pausing them.
package obs

import (
	"sort"
	"sync"
)

// Registry is one metric tree. Get-or-create accessors make wiring
// idempotent: asking twice for the same name returns the same metric, so
// engines sharing a registry (or re-registering after restart) never
// collide. A name is bound to one metric kind; re-requesting it as a
// different kind panics (a wiring bug, not a runtime condition).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, kindCounter)
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, kindGauge)
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, kindHist)
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc mirrors telemetry a subsystem keeps in its own atomics:
// fn is evaluated at snapshot time only. Re-registering a name replaces
// the previous func (an engine restarted on a shared registry rebinds
// its mirrors to the live instance).
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.RegisterFloatFunc(name, func() float64 { return float64(fn()) })
}

// RegisterFloatFunc is RegisterFunc for float-valued mirrors (e.g. the
// HLS throughput matrix rates).
func (r *Registry) RegisterFloatFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, kindFunc)
	r.funcs[name] = fn
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHist
	kindFunc
)

// checkKind panics when name is already bound to a different metric
// kind. Called with r.mu held.
func (r *Registry) checkKind(name string, want metricKind) {
	if _, ok := r.counters[name]; ok && want != kindCounter {
		panic("obs: metric " + name + " already registered as a counter")
	}
	if _, ok := r.gauges[name]; ok && want != kindGauge {
		panic("obs: metric " + name + " already registered as a gauge")
	}
	if _, ok := r.hists[name]; ok && want != kindHist {
		panic("obs: metric " + name + " already registered as a histogram")
	}
	if _, ok := r.funcs[name]; ok && want != kindFunc {
		panic("obs: metric " + name + " already registered as a func gauge")
	}
}

// Snapshot captures every metric's current value. Counter and histogram
// reads are atomic loads; func gauges are evaluated inline. The snapshot
// is a consistent-enough point-in-time view for monitoring — writers are
// never paused, so counters incremented mid-walk may or may not appear.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = float64(g.Value())
	}
	for name, fn := range r.funcs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
