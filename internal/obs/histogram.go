package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: log₂ octaves with histSubBuckets linear
// sub-buckets each (HDR-style). Values 0..histSubBuckets-1 get exact
// buckets; above that a bucket [lo, hi) spans lo/histSubBuckets, so any
// recorded value is off by at most 12.5% from its bucket bounds. The
// whole int64 range fits in under 500 buckets — 4 KiB of atomics per
// histogram, cheap enough to keep one per pipeline stage.
const (
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits // 8
	// histBuckets covers exp 0..63: (63-histSubBits+1)*histSubBuckets
	// + histSubBuckets = 496, rounded up.
	histBuckets = 512
	// histMaxBucket is the bucket holding max int64 (exp 62, top
	// sub-bucket); indices above it are unreachable for int64 values.
	histMaxBucket = (62-histSubBits+1)<<histSubBits + histSubBuckets - 1
)

// Histogram is a fixed-bucket log-scale distribution. Observe is two
// atomic adds and one atomic increment — no locks, no allocation — and
// Snapshot reads the buckets with atomic loads while writers continue.
// Values are typically durations in nanoseconds, but any non-negative
// int64 works; negative observations clamp to zero.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Name returns the histogram's canonical dotted name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value. Safe on nil (telemetry disabled).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // 2^exp <= u < 2^(exp+1)
	sub := (u >> (uint(exp) - histSubBits)) & (histSubBuckets - 1)
	return (exp-histSubBits+1)<<histSubBits + int(sub)
}

// bucketLo returns the smallest value that lands in bucket b.
func bucketLo(b int) int64 {
	if b < histSubBuckets {
		return int64(b)
	}
	exp := uint(b>>histSubBits) + histSubBits - 1
	sub := uint64(b & (histSubBuckets - 1))
	return int64(uint64(1)<<exp | sub<<(exp-histSubBits))
}

// bucketHi returns the exclusive upper bound of bucket b. The top
// reachable bucket's bound saturates at max int64 (its true bound, 2^63,
// is unrepresentable).
func bucketHi(b int) int64 {
	if b >= histMaxBucket {
		return int64(^uint64(0) >> 1) // max int64
	}
	return bucketLo(b + 1)
}

// HistBucket is one non-empty bucket in a snapshot: Count observations
// fell in [Lo, Hi).
type HistBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of a histogram: only the
// non-empty buckets, in ascending value order.
type HistogramSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram without blocking writers. Like any
// concurrent snapshot it is not a single-instant cut: an Observe racing
// the copy may contribute to count but not yet to its bucket (or vice
// versa); totals reconcile at quiesce.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for b := range h.buckets {
		if n := h.buckets[b].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Lo: bucketLo(b), Hi: bucketHi(b), Count: n})
		}
	}
	return s
}

// Sub returns the distribution of the observations recorded between
// prev and s, where both are snapshots of the same histogram and prev
// was taken earlier. Cumulative histograms only ever grow, so the
// per-bucket difference is itself a valid distribution — the per-tick
// feedback window the adaptive ϕ controller consumes. Counts that
// appear to run backwards (a snapshot racing concurrent writers) clamp
// to zero rather than going negative.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	if d.Count < 0 {
		d.Count = 0
	}
	if d.Sum < 0 {
		d.Sum = 0
	}
	// Both bucket lists are ascending by Lo and prev's buckets are a
	// subset of s's (buckets never empty out), so one linear merge pass
	// suffices.
	j := 0
	for _, b := range s.Buckets {
		for j < len(prev.Buckets) && prev.Buckets[j].Lo < b.Lo {
			j++
		}
		n := b.Count
		if j < len(prev.Buckets) && prev.Buckets[j].Lo == b.Lo {
			n -= prev.Buckets[j].Count
		}
		if n > 0 {
			d.Buckets = append(d.Buckets, HistBucket{Lo: b.Lo, Hi: b.Hi, Count: n})
		}
	}
	return d
}

// Mean returns the arithmetic mean of the recorded values, or 0 when
// empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) as the inclusive
// upper bound of the bucket holding the q-th observation, so the
// estimate is within the bucket's ≤12.5% relative width of the true
// order statistic. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(s.Count-1)) + 1
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			return b.Hi - 1
		}
	}
	return s.Buckets[len(s.Buckets)-1].Hi - 1
}
