package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage is one timed segment of a query task's lifecycle. The engine
// stamps ingest → dispatch → execute → reorder; the GPGPU pipeline
// additionally stamps its five internal stages, so a GPU task's trace
// carries the full copyin/movein/kernel/moveout/copyout breakdown the
// paper's §5.2 pipeline interleaves.
type Stage int

// Task lifecycle stages.
const (
	// StageIngest: the task's oldest input byte waiting in the ring
	// before the dispatcher cut the task (batching delay).
	StageIngest Stage = iota
	// StageQueue: task creation until a worker took it off the queue.
	StageQueue
	// StageExecCPU: plan execution on a CPU worker (incl. model pad).
	StageExecCPU
	// StageGPUCopyIn..StageGPUCopyOut: the device pipeline's five
	// stages.
	StageGPUCopyIn
	StageGPUMoveIn
	StageGPUKernel
	StageGPUMoveOut
	StageGPUCopyOut
	// StageReorder: result delivered until drained in task order.
	StageReorder

	numStages
)

// stageNames index the per-stage latency histograms in the registry.
var stageNames = [numStages]string{
	"saber.trace.ingest",
	"saber.trace.queue",
	"saber.trace.exec.cpu",
	"saber.trace.gpu.copyin",
	"saber.trace.gpu.movein",
	"saber.trace.gpu.kernel",
	"saber.trace.gpu.moveout",
	"saber.trace.gpu.copyout",
	"saber.trace.reorder",
}

// String names the stage (the last segments of its metric name).
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return "unknown"
	}
	return stageNames[s][len("saber.trace."):]
}

// Proc codes for TaskTrace.SetProc.
const (
	ProcUnknown int32 = iota
	ProcCPU
	ProcGPU
)

// TaskTrace accumulates one task's lifecycle stamps. All fields are
// atomics because stampers overlap: after a GPU timeout fails a task
// over, the stalled device pipeline may still be stamping GPU stages
// while the CPU retry stamps its own — last write wins per stage, which
// is exactly the retry-attempt semantics the trace reports. All methods
// are safe on a nil receiver (tracing disabled).
type TaskTrace struct {
	query     int
	id        int64
	createdNs int64 // unix nanoseconds (task creation / dispatch)

	proc        atomic.Int32
	attempts    atomic.Int32
	deliveredNs atomic.Int64
	stages      [numStages]atomic.Int64 // duration ns per stage
}

// SetProc records which processor class executed the winning attempt.
func (t *TaskTrace) SetProc(p int32) {
	if t != nil {
		t.proc.Store(p)
	}
}

// SetAttempts records how many failed attempts preceded the winning one.
func (t *TaskTrace) SetAttempts(n int32) {
	if t != nil {
		t.attempts.Store(n)
	}
}

// SetStage records a stage's duration (overwriting an earlier attempt's
// stamp).
func (t *TaskTrace) SetStage(s Stage, d time.Duration) {
	if t != nil && s >= 0 && s < numStages {
		t.stages[s].Store(int64(d))
	}
}

// MarkDelivered stamps the moment the task's result won its slot in the
// result stage.
func (t *TaskTrace) MarkDelivered(nowNs int64) {
	if t != nil {
		t.deliveredNs.Store(nowNs)
	}
}

// TraceRecord is one finished task's frozen trace, as kept in the
// tracer's postmortem ring and rendered by the admin endpoint.
type TraceRecord struct {
	Query       int              `json:"query"`
	Task        int64            `json:"task"`
	Proc        string           `json:"proc"`
	Attempts    int32            `json:"attempts,omitempty"`
	Quarantined bool             `json:"quarantined,omitempty"`
	CreatedNs   int64            `json:"created_ns"`
	TotalNs     int64            `json:"total_ns"`
	Stages      map[string]int64 `json:"stages,omitempty"`
}

// defaultTraceRing bounds the postmortem ring when the caller passes 0.
const defaultTraceRing = 128

// Tracer owns the per-task tracing machinery: it allocates traces,
// folds finished ones into the end-to-end and per-stage latency
// histograms, and keeps a bounded ring of recent traces for
// postmortems. A nil Tracer disables tracing at zero cost.
type Tracer struct {
	e2e    *Histogram
	stages [numStages]*Histogram

	started  *Counter
	finished *Counter

	mu   sync.Mutex
	ring []TraceRecord
	pos  int
	n    int
}

// NewTracer creates a tracer whose histograms live in reg. ringSize
// bounds the postmortem ring (0 selects the default).
func NewTracer(reg *Registry, ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = defaultTraceRing
	}
	tr := &Tracer{
		e2e:      reg.Histogram("saber.trace.e2e"),
		started:  reg.Counter("saber.trace.started"),
		finished: reg.Counter("saber.trace.finished"),
		ring:     make([]TraceRecord, ringSize),
	}
	for s := Stage(0); s < numStages; s++ {
		tr.stages[s] = reg.Histogram(stageNames[s])
	}
	return tr
}

// Begin starts a trace for one task. createdNs is the task's creation
// stamp (unix nanoseconds). Safe on nil (returns a nil trace, which
// swallows every stamp).
func (tr *Tracer) Begin(query int, id int64, createdNs int64) *TaskTrace {
	if tr == nil {
		return nil
	}
	tr.started.Inc()
	return &TaskTrace{query: query, id: id, createdNs: createdNs}
}

// Finish folds a completed task's trace into the latency histograms and
// the postmortem ring. nowNs is the drain stamp; quarantined marks a
// task that was shed instead of producing output (its stamps are kept
// for postmortems but excluded from the latency distributions, which
// describe delivered results only).
func (tr *Tracer) Finish(t *TaskTrace, nowNs int64, quarantined bool) {
	if tr == nil || t == nil {
		return
	}
	if d := t.deliveredNs.Load(); d > 0 {
		t.stages[StageReorder].Store(nowNs - d)
	}
	total := nowNs - t.createdNs
	rec := TraceRecord{
		Query:       t.query,
		Task:        t.id,
		Attempts:    t.attempts.Load(),
		Quarantined: quarantined,
		CreatedNs:   t.createdNs,
		TotalNs:     total,
	}
	switch t.proc.Load() {
	case ProcCPU:
		rec.Proc = "cpu"
	case ProcGPU:
		rec.Proc = "gpu"
	default:
		rec.Proc = "none"
	}
	for s := Stage(0); s < numStages; s++ {
		d := t.stages[s].Load()
		if d <= 0 {
			continue
		}
		if rec.Stages == nil {
			rec.Stages = make(map[string]int64, 4)
		}
		rec.Stages[s.String()] = d
		if !quarantined {
			tr.stages[s].Observe(d)
		}
	}
	if !quarantined {
		tr.e2e.Observe(total)
	}
	tr.finished.Inc()

	tr.mu.Lock()
	tr.ring[tr.pos] = rec
	tr.pos = (tr.pos + 1) % len(tr.ring)
	if tr.n < len(tr.ring) {
		tr.n++
	}
	tr.mu.Unlock()
}

// Recent returns the retained traces, newest first.
func (tr *Tracer) Recent() []TraceRecord {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]TraceRecord, 0, tr.n)
	for i := 1; i <= tr.n; i++ {
		out = append(out, tr.ring[(tr.pos-i+len(tr.ring))%len(tr.ring)])
	}
	return out
}
