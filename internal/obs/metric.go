package obs

import (
	"sync/atomic"
	"unsafe"
)

// counterShards stripes a counter across cache lines so concurrent
// writers (15 CPU workers + the GPU worker + the dispatcher) do not
// serialise on one contended word. Must be a power of two.
const counterShards = 16

// shard is one cache-line-padded counter stripe. 64 bytes of padding
// after the 8-byte value keeps adjacent shards out of each other's
// cache line on every mainstream architecture.
type shard struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonic sharded counter. Add never allocates and never
// locks; Value sums the shards (snapshot path only).
type Counter struct {
	name   string
	shards [counterShards]shard
}

// Name returns the counter's canonical dotted name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n. Safe on nil (telemetry disabled).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// Inc increments the counter by one. Safe on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. The sum is monotone over time but, like any
// striped counter, not a single-instant cut: shards read earlier may
// miss increments that land in shards read later.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// shardIndex picks a stripe from the caller's stack address. Goroutine
// stacks live in distinct allocations, so different goroutines hash to
// different stripes with high probability, while one goroutine's index
// is stable enough to keep its writes cache-warm. This is a placement
// heuristic only — any distribution is correct, the worst case merely
// degrades to a single shared counter.
func shardIndex() int {
	var probe byte
	// >>10 discards the call-depth wiggle within one stack (frames move
	// the address by tens to hundreds of bytes) and keeps the bits that
	// differ between stacks (spans are 1 KiB+ apart).
	return int((uintptr(unsafe.Pointer(&probe)) >> 10) & (counterShards - 1))
}

// Gauge is a point-in-time value (queue depth, in-flight tasks).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's canonical dotted name.
func (g *Gauge) Name() string { return g.name }

// Set stores v. Safe on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n. Safe on nil.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value loads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
