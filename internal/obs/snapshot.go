package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"
)

// Snapshot is a point-in-time view of a registry: counters, gauges
// (stored and func-backed alike) and histograms, keyed by canonical
// dotted name.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// histJSON augments a histogram snapshot with derived summary fields
// for the JSON endpoint (consumers should not have to re-derive
// quantiles from buckets).
type histJSON struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Mean    float64      `json:"mean"`
	P50     int64        `json:"p50"`
	P90     int64        `json:"p90"`
	P99     int64        `json:"p99"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

func (s HistogramSnapshot) toJSON() histJSON {
	j := histJSON{
		Count: s.Count, Sum: s.Sum, Mean: s.Mean(),
		P50: s.Quantile(0.50), P90: s.Quantile(0.90), P99: s.Quantile(0.99),
		Buckets: s.Buckets,
	}
	if n := len(s.Buckets); n > 0 {
		j.Max = s.Buckets[n-1].Hi - 1
	}
	return j
}

// MarshalJSON renders the snapshot with sorted keys and summarised
// histograms (expvar-style).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	hists := make(map[string]histJSON, len(s.Histograms))
	for k, v := range s.Histograms {
		hists[k] = v.toJSON()
	}
	return json.Marshal(struct {
		Counters   map[string]int64    `json:"counters"`
		Gauges     map[string]float64  `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}{s.Counters, s.Gauges, hists})
}

// instanceSeg matches the instance segments of the canonical naming
// scheme (q<i> for queries, in<j> for inputs), which the Prometheus
// renderer lifts into labels.
var instanceSeg = regexp.MustCompile(`^(q|in)(\d+)$`)

// promName splits a canonical dotted name into a Prometheus metric name
// and label pairs: saber.engine.q0.in1.ring.wraps →
// saber_engine_ring_wraps{input="1",query="0"}.
func promName(name string) (metric, labels string) {
	var parts []string
	var lbl []string
	for _, seg := range strings.Split(name, ".") {
		if m := instanceSeg.FindStringSubmatch(seg); m != nil {
			key := "query"
			if m[1] == "in" {
				key = "input"
			}
			lbl = append(lbl, fmt.Sprintf("%s=%q", key, m[2]))
			continue
		}
		parts = append(parts, seg)
	}
	metric = strings.ReplaceAll(strings.Join(parts, "_"), "-", "_")
	if len(lbl) > 0 {
		sort.Strings(lbl)
		labels = "{" + strings.Join(lbl, ",") + "}"
	}
	return metric, labels
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. Histograms become classic cumulative-bucket histograms.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		metric, labels := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", metric, metric, labels, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		metric, labels := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %g\n", metric, metric, labels, s.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		metric, labels := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", metric); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if err := writeHistLine(w, metric, labels, fmt.Sprintf("%d", b.Hi-1), cum); err != nil {
				return err
			}
		}
		if err := writeHistLine(w, metric, labels, "+Inf", h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n", metric, labels, h.Sum, metric, labels, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// writeHistLine emits one cumulative bucket sample, merging the le
// label into any instance labels.
func writeHistLine(w io.Writer, metric, labels, le string, cum int64) error {
	sep := "{"
	if labels != "" {
		sep = labels[:len(labels)-1] + ","
	}
	_, err := fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", metric, sep, le, cum)
	return err
}
