package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler serves the admin endpoint for one registry (and, optionally,
// one tracer):
//
//	/varz         expvar-style JSON snapshot with histogram quantiles
//	/metrics      Prometheus text exposition format
//	/traces       recent task traces, newest first (?n= bounds the count)
//	/debug/pprof  the standard runtime profiles
//
// The handler is read-only and safe to serve while the engine runs; every
// request takes a fresh snapshot. Extra routes (e.g. the catalog's
// /catalog and /catalog/ddl admin API) mount onto the same mux.
func Handler(reg *Registry, tr *Tracer, extra ...Route) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/varz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		recent := tr.Recent()
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(recent) {
				recent = recent[:n]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(recent)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	index := "saber admin endpoint\n\n/varz\n/metrics\n/traces\n/debug/pprof/\n"
	for _, rt := range extra {
		mux.Handle(rt.Pattern, rt.Handler)
		index += rt.Pattern + "\n"
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(index))
	})
	return mux
}

// Route is an extra endpoint mounted on the admin handler's mux.
type Route struct {
	Pattern string
	Handler http.Handler
}
