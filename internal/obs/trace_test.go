package obs

import (
	"testing"
	"time"
)

func TestTracerLifecycle(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 4)

	tt := tr.Begin(0, 7, 1000)
	tt.SetProc(ProcGPU)
	tt.SetAttempts(1)
	tt.SetStage(StageQueue, 100*time.Nanosecond)
	tt.SetStage(StageGPUKernel, 300*time.Nanosecond)
	tt.MarkDelivered(1500)
	tr.Finish(tt, 2000, false)

	s := reg.Snapshot()
	if s.Counters["saber.trace.started"] != 1 || s.Counters["saber.trace.finished"] != 1 {
		t.Fatalf("trace counters wrong: %+v", s.Counters)
	}
	if s.Histograms["saber.trace.e2e"].Count != 1 {
		t.Fatal("e2e histogram not observed")
	}
	if s.Histograms["saber.trace.gpu.kernel"].Count != 1 {
		t.Fatal("kernel stage histogram not observed")
	}
	if s.Histograms["saber.trace.reorder"].Count != 1 {
		t.Fatal("reorder stage not derived from delivered stamp")
	}

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent = %d records, want 1", len(recent))
	}
	rec := recent[0]
	if rec.Task != 7 || rec.Proc != "gpu" || rec.Attempts != 1 || rec.TotalNs != 1000 {
		t.Fatalf("bad record: %+v", rec)
	}
	if rec.Stages["queue"] != 100 || rec.Stages["gpu.kernel"] != 300 || rec.Stages["reorder"] != 500 {
		t.Fatalf("bad stages: %+v", rec.Stages)
	}
}

// Quarantined tasks keep their postmortem record but stay out of the
// latency distributions, which describe delivered results only.
func TestTracerQuarantineExcludedFromHistograms(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 4)
	tt := tr.Begin(0, 1, 0)
	tt.SetStage(StageExecCPU, time.Microsecond)
	tr.Finish(tt, 100, true)

	s := reg.Snapshot()
	if s.Histograms["saber.trace.e2e"].Count != 0 {
		t.Fatal("quarantined task leaked into e2e histogram")
	}
	recent := tr.Recent()
	if len(recent) != 1 || !recent[0].Quarantined {
		t.Fatalf("quarantined record missing from ring: %+v", recent)
	}
}

func TestTracerRingWrapsNewestFirst(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 3)
	for i := int64(0); i < 5; i++ {
		tr.Finish(tr.Begin(0, i, 0), 1, false)
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring kept %d records, want 3", len(recent))
	}
	for i, want := range []int64{4, 3, 2} {
		if recent[i].Task != want {
			t.Fatalf("recent[%d].Task = %d, want %d", i, recent[i].Task, want)
		}
	}
}

// Tracing must be entirely optional: nil tracer and nil traces swallow
// every call.
func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tt := tr.Begin(0, 1, 0)
	if tt != nil {
		t.Fatal("nil tracer should hand out nil traces")
	}
	tt.SetProc(ProcCPU)
	tt.SetAttempts(2)
	tt.SetStage(StageQueue, time.Second)
	tt.MarkDelivered(1)
	tr.Finish(tt, 2, false)
	if got := tr.Recent(); got != nil {
		t.Fatalf("nil tracer Recent = %v", got)
	}
}

func TestStageString(t *testing.T) {
	if StageGPUCopyIn.String() != "gpu.copyin" || StageReorder.String() != "reorder" {
		t.Fatal("stage names wrong")
	}
	if Stage(-1).String() != "unknown" || Stage(numStages).String() != "unknown" {
		t.Fatal("out-of-range stages should be unknown")
	}
}
