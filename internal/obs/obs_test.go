package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterShardedSum(t *testing.T) {
	c := &Counter{name: "test"}
	c.Add(3)
	c.Inc()
	if v := c.Value(); v != 4 {
		t.Fatalf("counter = %d, want 4", v)
	}
	var nilC *Counter
	nilC.Add(1)
	nilC.Inc()
	if nilC.Value() != 0 {
		t.Fatal("nil counter should read zero")
	}
}

func TestGauge(t *testing.T) {
	g := &Gauge{name: "test"}
	g.Set(7)
	g.Add(-2)
	if v := g.Value(); v != 5 {
		t.Fatalf("gauge = %d, want 5", v)
	}
	var nilG *Gauge
	nilG.Set(1)
	nilG.Add(1)
	if nilG.Value() != 0 {
		t.Fatal("nil gauge should read zero")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a.b") != r.Counter("a.b") {
		t.Fatal("counter get-or-create not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge get-or-create not idempotent")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram get-or-create not idempotent")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("requesting a counter name as a gauge should panic")
		}
	}()
	r.Gauge("x")
}

func TestRegistryFuncMirror(t *testing.T) {
	r := NewRegistry()
	v := int64(10)
	r.RegisterFunc("mirror", func() int64 { return v })
	v = 42
	if got := r.Snapshot().Gauges["mirror"]; got != 42 {
		t.Fatalf("mirror = %v, want 42 (must evaluate at snapshot time)", got)
	}
	// Re-registering rebinds.
	r.RegisterFunc("mirror", func() int64 { return -1 })
	if got := r.Snapshot().Gauges["mirror"]; got != -1 {
		t.Fatalf("rebound mirror = %v, want -1", got)
	}
}

// The race detector must see no conflict between hot-path writers and
// concurrent snapshots. Run with -race.
func TestConcurrentWritersAndSnapshots(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("saber.test.count")
	g := r.Gauge("saber.test.gauge")
	h := r.Histogram("saber.test.hist")
	r.RegisterFunc("saber.test.mirror", c.Value)

	const writers = 8
	const perWriter = 5000
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				s := r.Snapshot()
				if s.Counters["saber.test.count"] < 0 {
					t.Error("counter went negative")
					return
				}
				_ = s.Histograms["saber.test.hist"].Quantile(0.99)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(w*perWriter + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-snapDone

	s := r.Snapshot()
	if got := s.Counters["saber.test.count"]; got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := s.Gauges["saber.test.gauge"]; got != writers*perWriter {
		t.Fatalf("gauge = %v, want %d", got, writers*perWriter)
	}
	if got := s.Histograms["saber.test.hist"].Count; got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
	if got := s.Gauges["saber.test.mirror"]; got != writers*perWriter {
		t.Fatalf("mirror = %v, want %d", got, writers*perWriter)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("saber.engine.q0.tasks.created").Add(5)
	r.Histogram("saber.trace.e2e").Observe(1000)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
			P99   int64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Counters["saber.engine.q0.tasks.created"] != 5 {
		t.Fatalf("bad counters in JSON: %s", b)
	}
	if h := out.Histograms["saber.trace.e2e"]; h.Count != 1 || h.P99 < 1000 {
		t.Fatalf("bad histogram summary in JSON: %s", b)
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("saber.engine.q0.result.overflow").Add(2)
	r.Counter("saber.engine.q0.in1.ring.wraps").Add(3)
	r.Gauge("saber.gpu.inflight").Set(4)
	r.Histogram("saber.trace.e2e").Observe(5)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`saber_engine_result_overflow{query="0"} 2`,
		`saber_engine_ring_wraps{input="1",query="0"} 3`,
		`saber_gpu_inflight 4`,
		"# TYPE saber_trace_e2e histogram",
		`saber_trace_e2e_bucket{le="+Inf"} 1`,
		"saber_trace_e2e_sum 5",
		"saber_trace_e2e_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.RegisterFunc("c", func() int64 { return 0 })
	got := r.Names()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("names = %v", got)
	}
}
