package obs

import (
	"math"
	"math/rand"
	"testing"
)

// Every bucket must contain its own bounds: bucketIndex(Lo)==b,
// bucketIndex(Hi-1)==b, and bucketIndex(Hi)==b+1 (when representable).
func TestHistogramBucketBoundaries(t *testing.T) {
	for b := 0; b < histMaxBucket; b++ {
		lo, hi := bucketLo(b), bucketHi(b)
		if hi <= lo {
			t.Fatalf("bucket %d: degenerate bounds [%d, %d)", b, lo, hi)
		}
		if got := bucketIndex(lo); got != b {
			t.Fatalf("bucketIndex(lo=%d) = %d, want %d", lo, got, b)
		}
		if got := bucketIndex(hi - 1); got != b {
			t.Fatalf("bucketIndex(hi-1=%d) = %d, want %d", hi-1, got, b)
		}
		if hi < math.MaxInt64 {
			if got := bucketIndex(hi); got != b+1 {
				t.Fatalf("bucketIndex(hi=%d) = %d, want %d", hi, got, b+1)
			}
		}
	}
}

// Values 0..7 get exact buckets; above that, bucket width / lo must be
// at most 1/histSubBuckets (12.5% relative error).
func TestHistogramRelativeError(t *testing.T) {
	for v := int64(0); v < histSubBuckets; v++ {
		b := bucketIndex(v)
		if bucketLo(b) != v || bucketHi(b) != v+1 {
			t.Fatalf("value %d: want exact bucket, got [%d, %d)", v, bucketLo(b), bucketHi(b))
		}
	}
	for _, v := range []int64{8, 9, 100, 1_000, 123_456, 1 << 30, 1<<62 + 12345} {
		b := bucketIndex(v)
		lo, hi := bucketLo(b), bucketHi(b)
		if v < lo || v >= hi {
			t.Fatalf("value %d outside its bucket [%d, %d)", v, lo, hi)
		}
		if width := float64(hi-lo) / float64(lo); width > 1.0/histSubBuckets+1e-9 {
			t.Fatalf("value %d: bucket [%d, %d) relative width %.4f > %.4f", v, lo, hi, width, 1.0/histSubBuckets)
		}
	}
}

// Quantile estimates must land within the bucket holding the true order
// statistic, i.e. within 12.5% of the exact value.
func TestHistogramQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &Histogram{name: "test"}
	vals := make([]int64, 0, 10_000)
	for i := 0; i < 10_000; i++ {
		// Log-uniform spread across six orders of magnitude, like
		// latencies.
		v := int64(math.Exp(rng.Float64() * math.Log(1e9)))
		vals = append(vals, v)
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	sorted := append([]int64(nil), vals...)
	sortInt64(sorted)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		exact := sorted[int(q*float64(len(sorted)-1))]
		got := s.Quantile(q)
		if got < exact {
			t.Fatalf("q=%.2f: estimate %d below exact %d", q, got, exact)
		}
		// The estimate is the inclusive upper bound of the exact value's
		// bucket, so it overshoots by at most the bucket width.
		if exact >= histSubBuckets && float64(got-exact) > float64(exact)/histSubBuckets {
			t.Fatalf("q=%.2f: estimate %d overshoots exact %d by more than 12.5%%", q, got, exact)
		}
	}
}

func sortInt64(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := &Histogram{name: "test"}
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 1 || len(s.Buckets) != 1 || s.Buckets[0].Lo != 0 {
		t.Fatalf("negative observation not clamped to zero bucket: %+v", s)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram snapshot count = %d", s.Count)
	}
}

func TestHistogramMeanAndEmptyQuantile(t *testing.T) {
	var s HistogramSnapshot
	if s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot should report zero mean and quantile")
	}
	h := &Histogram{name: "test"}
	h.Observe(2)
	h.Observe(4)
	if m := h.Snapshot().Mean(); m != 3 {
		t.Fatalf("mean = %v, want 3", m)
	}
}
