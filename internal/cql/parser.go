package cql

import (
	"fmt"
	"strconv"
	"strings"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

// Catalog maps stream names to their schemas for parsing.
type Catalog map[string]*schema.Schema

// Parse parses a single CQL query and validates it against the catalog.
// The query is given the provided name.
func Parse(name, src string, cat Catalog) (*query.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, cat: cat, src: src}
	q, err := p.parseQuery(name)
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting at %q", p.cur().text)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error, for statically known queries.
func MustParse(name, src string, cat Catalog) *query.Query {
	q, err := Parse(name, src, cat)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	pos  int
	cat  Catalog
	src  string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		want := describeToken(kind, text)
		got := describeToken(p.cur().kind, p.cur().text)
		return token{}, p.errf("expected %s, found %s", want, got)
	}
	return p.next(), nil
}

// describeToken names a token for error messages: the literal text when
// there is one, the token class when any token of the kind would do, and
// "end of input" at EOF (whose text is empty — bare %q would print "").
func describeToken(kind tokenKind, text string) string {
	if text != "" {
		return fmt.Sprintf("%q", text)
	}
	switch kind {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "an identifier"
	case tokNumber:
		return "a number"
	case tokKeyword:
		return "a keyword"
	default:
		return "a token"
	}
}

func (p *parser) errf(format string, args ...any) error {
	return errAt(p.src, p.cur().pos, format, args...)
}

// errfTok is errf anchored at a specific (already consumed) token rather
// than the parser's current position.
func (p *parser) errfTok(t token, format string, args ...any) error {
	return errAt(p.src, t.pos, format, args...)
}

type selectItem struct {
	isStar bool
	agg    *query.Aggregate
	proj   *query.ProjectionItem
}

func (p *parser) parseQuery(name string) (*query.Query, error) {
	if _, err := p.expect(tokKeyword, "select"); err != nil {
		return nil, err
	}
	q := &query.Query{Name: name}
	q.Distinct = p.accept(tokKeyword, "distinct")

	items, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}

	if _, err := p.expect(tokKeyword, "from"); err != nil {
		return nil, err
	}
	for {
		in, err := p.parseSource()
		if err != nil {
			return nil, err
		}
		q.Inputs = append(q.Inputs, in)
		if !p.accept(tokPunct, ",") {
			break
		}
	}

	var where expr.Pred
	if p.accept(tokKeyword, "where") {
		where, err = p.parsePred()
		if err != nil {
			return nil, err
		}
	}
	// For two-input queries the WHERE clause is the θ-join predicate, as in
	// the paper's SG3 listing.
	if len(q.Inputs) == 2 {
		q.JoinPred = where
	} else {
		q.Where = where
	}

	if p.accept(tokKeyword, "group") {
		if _, err := p.expect(tokKeyword, "by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, c)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "having") {
		q.Having, err = p.parsePred()
		if err != nil {
			return nil, err
		}
	}

	// Distribute select items. Aggregation queries list timestamp and the
	// group columns alongside the aggregates (Appendix A shape); those are
	// implied by the canonical aggregation output schema, so plain-column
	// items that match group columns (or timestamp) are dropped.
	for _, it := range items {
		switch {
		case it.isStar:
			// select *: empty projection means all columns.
		case it.agg != nil:
			q.Aggregates = append(q.Aggregates, *it.agg)
		default:
			q.Projection = append(q.Projection, *it.proj)
		}
	}
	if len(q.Aggregates) > 0 {
		kept := q.Projection[:0]
		for _, item := range q.Projection {
			c, ok := item.Expr.(expr.Column)
			if ok && (c.Name == "timestamp" || q.HasGroupColumn(c.Name)) {
				continue
			}
			kept = append(kept, item)
		}
		q.Projection = kept
		if len(q.Projection) > 0 {
			return nil, fmt.Errorf("cql: query %s selects non-grouping columns alongside aggregates", name)
		}
	}
	return q, nil
}

func (p *parser) parseSelectList() ([]selectItem, error) {
	var items []selectItem
	for {
		it, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	return items, nil
}

var aggFuncs = map[string]query.AggFunc{
	"count": query.Count, "sum": query.Sum, "avg": query.Avg,
	"min": query.Min, "max": query.Max,
}

func (p *parser) parseSelectItem() (selectItem, error) {
	if p.accept(tokPunct, "*") {
		return selectItem{isStar: true}, nil
	}
	if p.cur().kind == tokKeyword {
		if f, isAgg := aggFuncs[p.cur().text]; isAgg {
			p.next()
			if _, err := p.expect(tokPunct, "("); err != nil {
				return selectItem{}, err
			}
			var arg expr.Expr
			if !p.accept(tokPunct, "*") {
				var err error
				arg, err = p.parseExpr()
				if err != nil {
					return selectItem{}, err
				}
			} else if f != query.Count {
				return selectItem{}, p.errf("%s(*) is only valid for count", f)
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return selectItem{}, err
			}
			agg := query.Aggregate{Func: f, Arg: arg}
			if p.accept(tokKeyword, "as") {
				t, err := p.expect(tokIdent, "")
				if err != nil {
					return selectItem{}, err
				}
				agg.As = t.text
			}
			return selectItem{agg: &agg}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return selectItem{}, err
	}
	item := query.ProjectionItem{Expr: e}
	if p.accept(tokKeyword, "as") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return selectItem{}, err
		}
		item.As = t.text
	}
	return selectItem{proj: &item}, nil
}

func (p *parser) parseSource() (query.Input, error) {
	nameTok, err := p.expect(tokIdent, "")
	if err != nil {
		return query.Input{}, err
	}
	s, ok := p.cat[nameTok.text]
	if !ok {
		return query.Input{}, p.errfTok(nameTok, "unknown stream %q", nameTok.text)
	}
	if _, err := p.expect(tokPunct, "["); err != nil {
		return query.Input{}, err
	}
	w, err := p.parseWindowSpec()
	if err != nil {
		return query.Input{}, err
	}
	if _, err := p.expect(tokPunct, "]"); err != nil {
		return query.Input{}, err
	}
	in := query.Input{Name: nameTok.text, Schema: s, Window: w}
	if p.accept(tokKeyword, "as") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return query.Input{}, err
		}
		in.Alias = t.text
	}
	return in, nil
}

func (p *parser) parseWindowSpec() (window.Def, error) {
	switch {
	case p.accept(tokKeyword, "range"):
		if p.accept(tokKeyword, "unbounded") {
			return window.NewUnbounded(), nil
		}
		size, err := p.parseInt()
		if err != nil {
			return window.Def{}, err
		}
		slide := size // default: tumbling
		if p.accept(tokKeyword, "slide") {
			if slide, err = p.parseInt(); err != nil {
				return window.Def{}, err
			}
		}
		return window.NewTime(size, slide), nil
	case p.accept(tokKeyword, "rows"):
		size, err := p.parseInt()
		if err != nil {
			return window.Def{}, err
		}
		slide := size
		if p.accept(tokKeyword, "slide") {
			if slide, err = p.parseInt(); err != nil {
				return window.Def{}, err
			}
		}
		return window.NewCount(size, slide), nil
	case p.at(tokKeyword, "partition"):
		return window.Def{}, p.errf("partition windows are not supported by the CQL front end; use the builder API with a UDF operator")
	default:
		return window.Def{}, p.errf("expected window specification, found %q", p.cur().text)
	}
}

func (p *parser) parseInt() (int64, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errf("invalid integer %q", t.text)
	}
	return v, nil
}

func (p *parser) parseColumnRef() (expr.Column, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return expr.Column{}, err
	}
	if p.accept(tokPunct, ".") {
		f, err := p.expect(tokIdent, "")
		if err != nil {
			return expr.Column{}, err
		}
		return expr.QCol(t.text, f.text), nil
	}
	return expr.Col(t.text), nil
}

// --- Predicates -------------------------------------------------------------

func (p *parser) parsePred() (expr.Pred, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (expr.Pred, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	preds := []expr.Pred{left}
	for p.accept(tokKeyword, "or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		preds = append(preds, r)
	}
	if len(preds) == 1 {
		return left, nil
	}
	return expr.Or{Preds: preds}, nil
}

func (p *parser) parseAnd() (expr.Pred, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	preds := []expr.Pred{left}
	for p.accept(tokKeyword, "and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		preds = append(preds, r)
	}
	if len(preds) == 1 {
		return left, nil
	}
	return expr.And{Preds: preds}, nil
}

func (p *parser) parseNot() (expr.Pred, error) {
	if p.accept(tokKeyword, "not") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.Not{P: inner}, nil
	}
	// A '(' may open a parenthesised predicate or a parenthesised
	// arithmetic expression inside a comparison; try the predicate reading
	// first and backtrack.
	if p.at(tokPunct, "(") {
		save := p.pos
		p.next()
		if inner, err := p.parsePred(); err == nil {
			if p.accept(tokPunct, ")") && !p.atCmpOp() && !p.atArithOp() {
				return inner, nil
			}
		}
		p.pos = save
	}
	return p.parseCmp()
}

var cmpOps = map[string]expr.CmpOp{
	"==": expr.Eq, "=": expr.Eq, "!=": expr.Ne,
	"<": expr.Lt, "<=": expr.Le, ">": expr.Gt, ">=": expr.Ge,
}

func (p *parser) atCmpOp() bool {
	t := p.cur()
	if t.kind != tokPunct {
		return false
	}
	_, ok := cmpOps[t.text]
	return ok
}

func (p *parser) atArithOp() bool {
	t := p.cur()
	if t.kind != tokPunct {
		return false
	}
	switch t.text {
	case "+", "-", "*", "/", "%":
		return true
	}
	return false
}

func (p *parser) parseCmp() (expr.Pred, error) {
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atCmpOp() {
		return nil, p.errf("expected comparison operator, found %q", p.cur().text)
	}
	op := cmpOps[p.next().text]
	right, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return expr.Cmp{Op: op, Left: left, Right: right}, nil
}

// --- Arithmetic expressions --------------------------------------------------

func (p *parser) parseExpr() (expr.Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.ArithOp
		switch {
		case p.accept(tokPunct, "+"):
			op = expr.Add
		case p.accept(tokPunct, "-"):
			op = expr.Sub
		default:
			return left, nil
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = expr.Arith{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseTerm() (expr.Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.ArithOp
		switch {
		case p.accept(tokPunct, "*"):
			op = expr.Mul
		case p.accept(tokPunct, "/"):
			op = expr.Div
		case p.accept(tokPunct, "%"):
			op = expr.Mod
		default:
			return left, nil
		}
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = expr.Arith{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseFactor() (expr.Expr, error) {
	switch {
	case p.accept(tokPunct, "-"):
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return expr.Neg{E: inner}, nil
	case p.accept(tokPunct, "("):
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	case p.cur().kind == tokNumber:
		t := p.next()
		if strings.Contains(t.text, ".") {
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("invalid number %q", t.text)
			}
			return expr.FloatConst(v), nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", t.text)
		}
		return expr.IntConst(v), nil
	case p.cur().kind == tokIdent:
		return p.parseColumnRef()
	default:
		return nil, p.errf("expected expression, found %q", p.cur().text)
	}
}
