package cql

import (
	"errors"
	"strings"
	"testing"

	"saber/internal/schema"
)

func TestParseErrorPositions(t *testing.T) {
	cat := Catalog{"S": schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "value", Type: schema.Float32},
	)}
	cases := []struct {
		name      string
		src       string
		line, col int
	}{
		{"bad window keyword", "select *\nfrom S [bogus 10]", 2, 9},
		{"unknown stream", "select * from Nope [rows 4]", 1, 15},
		{"unexpected char", "select ?\nfrom S [rows 4]", 1, 8},
		{"trailing input", "select * from S [rows 4] extra", 1, 26},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("q", tc.src, cat)
			if err == nil {
				t.Fatalf("parse succeeded, want error")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v is not a *ParseError", err)
			}
			if pe.Line != tc.line || pe.Col != tc.col {
				t.Fatalf("error at line %d col %d, want line %d col %d (%v)",
					pe.Line, pe.Col, tc.line, tc.col, err)
			}
			if !strings.Contains(err.Error(), "line") {
				t.Fatalf("error %q does not name the line", err)
			}
		})
	}
}

func TestPosition(t *testing.T) {
	src := "ab\ncd\ne"
	for _, tc := range []struct{ off, line, col int }{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, {3, 2, 1}, {5, 2, 3}, {6, 3, 1}, {99, 3, 2},
	} {
		if l, c := Position(src, tc.off); l != tc.line || c != tc.col {
			t.Fatalf("Position(%d) = %d:%d, want %d:%d", tc.off, l, c, tc.line, tc.col)
		}
	}
}
