package cql

import (
	"strings"
	"testing"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

func catalog() Catalog {
	taskEvents := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "jobId", Type: schema.Int64},
		schema.Field{Name: "taskId", Type: schema.Int64},
		schema.Field{Name: "machineId", Type: schema.Int64},
		schema.Field{Name: "eventType", Type: schema.Int32},
		schema.Field{Name: "userId", Type: schema.Int32},
		schema.Field{Name: "category", Type: schema.Int32},
		schema.Field{Name: "priority", Type: schema.Int32},
		schema.Field{Name: "cpu", Type: schema.Float32},
		schema.Field{Name: "ram", Type: schema.Float32},
		schema.Field{Name: "disk", Type: schema.Float32},
		schema.Field{Name: "constraints", Type: schema.Int32},
	)
	smartGrid := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "value", Type: schema.Float32},
		schema.Field{Name: "property", Type: schema.Int32},
		schema.Field{Name: "plug", Type: schema.Int32},
		schema.Field{Name: "household", Type: schema.Int32},
		schema.Field{Name: "house", Type: schema.Int32},
	)
	posSpeed := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "vehicle", Type: schema.Int32},
		schema.Field{Name: "speed", Type: schema.Float32},
		schema.Field{Name: "highway", Type: schema.Int32},
		schema.Field{Name: "lane", Type: schema.Int32},
		schema.Field{Name: "direction", Type: schema.Int32},
		schema.Field{Name: "position", Type: schema.Int32},
	)
	globalLoad := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "globalAvgLoad", Type: schema.Float32},
	)
	localLoad := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "plug", Type: schema.Int32},
		schema.Field{Name: "household", Type: schema.Int32},
		schema.Field{Name: "house", Type: schema.Int32},
		schema.Field{Name: "localAvgLoad", Type: schema.Float32},
	)
	return Catalog{
		"TaskEvents":    taskEvents,
		"SmartGridStr":  smartGrid,
		"PosSpeedStr":   posSpeed,
		"SegSpeedStr":   posSpeed,
		"GlobalLoadStr": globalLoad,
		"LocalLoadStr":  localLoad,
	}
}

// TestAppendixACM1 parses the paper's CM1 listing verbatim.
func TestAppendixACM1(t *testing.T) {
	q, err := Parse("CM1", `
		select timestamp, category, sum(cpu) as totalCpu
		from TaskEvents [range 60 slide 1]
		group by category`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsAggregation() || len(q.Aggregates) != 1 || q.Aggregates[0].Func != query.Sum {
		t.Fatalf("aggregates = %+v", q.Aggregates)
	}
	if q.Aggregates[0].As != "totalCpu" {
		t.Errorf("alias = %q", q.Aggregates[0].As)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Name != "category" {
		t.Errorf("group by = %v", q.GroupBy)
	}
	w := q.Inputs[0].Window
	if w.Kind != window.Time || w.Size != 60 || w.Slide != 1 {
		t.Errorf("window = %v", w)
	}
	out := q.OutputSchema()
	if out.IndexOf("totalCpu") != 2 {
		t.Errorf("output schema = %s", out)
	}
}

// TestAppendixACM2 parses CM2 verbatim.
func TestAppendixACM2(t *testing.T) {
	q, err := Parse("CM2", `
		select timestamp, jobId, avg(cpu) as avgCpu
		from TaskEvents [range 60 slide 1]
		where eventType == 1
		group by jobId`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if q.Where == nil {
		t.Fatal("where dropped")
	}
	if q.Aggregates[0].Func != query.Avg {
		t.Errorf("func = %v", q.Aggregates[0].Func)
	}
}

// TestAppendixASG1 parses SG1 verbatim (upper-case AVG, tumbling default
// absent: explicit slide).
func TestAppendixASG1(t *testing.T) {
	q, err := Parse("SG1", `
		select timestamp, AVG(value) as globalAvgLoad
		from SmartGridStr [range 3600 slide 1]`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 0 || len(q.Aggregates) != 1 {
		t.Fatalf("parsed = %+v", q)
	}
}

// TestAppendixASG2 parses SG2 verbatim.
func TestAppendixASG2(t *testing.T) {
	q, err := Parse("SG2", `
		select timestamp, plug, household, house, AVG(value) as localAvgLoad
		from SmartGridStr [range 3600 slide 1]
		group by plug, household, house`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 3 {
		t.Fatalf("group by = %v", q.GroupBy)
	}
	out := q.OutputSchema()
	for i, n := range []string{"timestamp", "plug", "household", "house", "localAvgLoad"} {
		if out.Field(i).Name != n {
			t.Errorf("output field %d = %q want %q", i, out.Field(i).Name, n)
		}
	}
}

// TestAppendixASG3Join parses the join core of SG3.
func TestAppendixASG3Join(t *testing.T) {
	q, err := Parse("SG3", `
		select L.timestamp, L.plug, L.household, L.house
		from LocalLoadStr [range 1 slide 1] as L,
		     GlobalLoadStr [range 1 slide 1] as G
		where L.timestamp == G.timestamp and L.localAvgLoad > G.globalAvgLoad`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsJoin() || q.JoinPred == nil || q.Where != nil {
		t.Fatalf("join parse wrong: %+v", q)
	}
	and, ok := q.JoinPred.(expr.And)
	if !ok || len(and.Preds) != 2 {
		t.Fatalf("join pred = %v", q.JoinPred)
	}
	if len(q.Projection) != 4 {
		t.Errorf("projection = %v", q.Projection)
	}
}

// TestAppendixALRB1 parses LRB1 verbatim, including the arithmetic
// projection and the unbounded window.
func TestAppendixALRB1(t *testing.T) {
	q, err := Parse("LRB1", `
		select timestamp, vehicle, speed,
		       highway, lane, direction,
		       (position/5280) as segment
		from PosSpeedStr [range unbounded]`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if q.Inputs[0].Window.Kind != window.Unbounded {
		t.Errorf("window = %v", q.Inputs[0].Window)
	}
	if got := q.OutputSchema().IndexOf("segment"); got != 6 {
		t.Errorf("segment index = %d", got)
	}
}

// TestAppendixALRB3 parses LRB3 verbatim, including HAVING.
func TestAppendixALRB3(t *testing.T) {
	q, err := Parse("LRB3", `
		select timestamp, highway, direction, segment,
		       AVG(speed) as avgSpeed
		from SegSpeedStr [range 300 slide 1]
		group by highway, direction, segment
		having avgSpeed < 40.0`, catalog())
	if err == nil {
		t.Fatal("expected error: SegSpeedStr lacks a segment column pre-derivation")
	}
	// Chained form: LRB3 runs over LRB1's output (SegSpeedStr with segment).
	cat := catalog()
	seg, _ := cat["SegSpeedStr"].Concat(schema.MustNew(schema.Field{Name: "segment", Type: schema.Int32}), "")
	cat["SegSpeedStr2"] = seg
	q, err = Parse("LRB3", `
		select timestamp, highway, direction, segment, AVG(speed) as avgSpeed
		from SegSpeedStr2 [range 300 slide 1]
		group by highway, direction, segment
		having avgSpeed < 40.0`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.Having == nil {
		t.Fatal("having dropped")
	}
}

func TestSelectStar(t *testing.T) {
	q, err := Parse("all", `select * from TaskEvents [rows 1024 slide 512] where cpu > 0.5`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Projection) != 0 || q.Where == nil {
		t.Fatalf("parsed = %+v", q)
	}
	if !q.OutputSchema().Equal(catalog()["TaskEvents"]) {
		t.Error("select * output schema differs from input")
	}
	w := q.Inputs[0].Window
	if w.Kind != window.Count || w.Size != 1024 || w.Slide != 512 {
		t.Errorf("window = %v", w)
	}
}

func TestTumblingDefault(t *testing.T) {
	q, err := Parse("t", `select * from TaskEvents [rows 64]`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if !q.Inputs[0].Window.Tumbling() {
		t.Errorf("window = %v, want tumbling", q.Inputs[0].Window)
	}
	q2, err := Parse("t2", `select * from TaskEvents [range 500]`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if w := q2.Inputs[0].Window; !w.Tumbling() || w.Kind != window.Time {
		t.Errorf("window = %v", w)
	}
}

func TestComplexPredicates(t *testing.T) {
	q, err := Parse("p", `
		select * from TaskEvents [rows 4]
		where eventType == 2 and (cpu > 0.9 or ram > 0.9) and not (priority < 1)`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	and, ok := q.Where.(expr.And)
	if !ok || len(and.Preds) != 3 {
		t.Fatalf("where = %v", q.Where)
	}
	if _, ok := and.Preds[1].(expr.Or); !ok {
		t.Errorf("second conjunct = %T", and.Preds[1])
	}
	if _, ok := and.Preds[2].(expr.Not); !ok {
		t.Errorf("third conjunct = %T", and.Preds[2])
	}
}

func TestParenthesisedArithmeticInPredicate(t *testing.T) {
	q, err := Parse("p", `select * from TaskEvents [rows 4] where (cpu + ram) * 2.0 >= 1.0`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	cmp, ok := q.Where.(expr.Cmp)
	if !ok || cmp.Op != expr.Ge {
		t.Fatalf("where = %v", q.Where)
	}
}

func TestCountStar(t *testing.T) {
	q, err := Parse("c", `select timestamp, category, count(*) as n from TaskEvents [rows 8] group by category`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if q.Aggregates[0].Func != query.Count || q.Aggregates[0].Arg != nil {
		t.Fatalf("count = %+v", q.Aggregates[0])
	}
}

func TestDistinct(t *testing.T) {
	q, err := Parse("d", `select distinct vehicle from PosSpeedStr [rows 16]`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct {
		t.Error("distinct dropped")
	}
}

func TestComments(t *testing.T) {
	q, err := Parse("c", `
		-- Query 1
		select timestamp -- keep the timestamp
		from TaskEvents [rows 4]`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Projection) != 1 {
		t.Fatalf("projection = %v", q.Projection)
	}
}

func TestNegativeAndUnaryMinus(t *testing.T) {
	q, err := Parse("n", `select * from TaskEvents [rows 4] where cpu > -0.5 and -priority < 0`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if q.Where == nil {
		t.Fatal("where dropped")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ``},
		{"noSelect", `from TaskEvents [rows 4]`},
		{"unknownStream", `select * from Nope [rows 4]`},
		{"noWindow", `select * from TaskEvents`},
		{"badWindow", `select * from TaskEvents [banana 4]`},
		{"partition", `select * from TaskEvents [partition by jobId rows 1]`},
		{"sumStar", `select sum(*) from TaskEvents [rows 4]`},
		{"trailing", `select * from TaskEvents [rows 4] garbage`},
		{"unknownColumn", `select nope from TaskEvents [rows 4]`},
		{"badChar", `select # from TaskEvents [rows 4]`},
		{"danglingCmp", `select * from TaskEvents [rows 4] where cpu >`},
		{"notAPred", `select * from TaskEvents [rows 4] where cpu`},
		{"unclosedParen", `select * from TaskEvents [rows 4] where (cpu > 1`},
		{"threeStreams", `select * from TaskEvents [rows 4], TaskEvents [rows 4], TaskEvents [rows 4]`},
		{"aggPlusColumn", `select cpu, sum(ram) as s from TaskEvents [rows 4]`},
		{"badHaving", `select sum(cpu) as s from TaskEvents [rows 4] having nope > 1`},
		{"floatRows", `select * from TaskEvents [rows 4.5]`},
	}
	for _, c := range cases {
		if _, err := Parse(c.name, c.src, catalog()); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("bad", `select`, catalog())
}

func TestKeywordCaseInsensitive(t *testing.T) {
	q, err := Parse("k", `SELECT timestamp FROM TaskEvents [ROWS 4] WHERE cpu > 0.1`, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Projection) != 1 || q.Where == nil {
		t.Fatalf("parsed = %+v", q)
	}
}

func TestLexerOperators(t *testing.T) {
	toks, err := lex(`a==b != c <= d >= e < f > g = h`)
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tk := range toks {
		if tk.kind == tokPunct {
			ops = append(ops, tk.text)
		}
	}
	want := []string{"==", "!=", "<=", ">=", "<", ">", "="}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("ops = %v", ops)
	}
}

func TestLexerNumbers(t *testing.T) {
	toks, err := lex(`12 3.5 0.25 7.`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "12" || toks[1].text != "3.5" || toks[2].text != "0.25" {
		t.Errorf("tokens = %+v", toks)
	}
	// "7." lexes as number 7 then punct '.'
	if toks[3].text != "7" || toks[4].text != "." {
		t.Errorf("trailing dot tokens = %+v", toks[3:])
	}
}
