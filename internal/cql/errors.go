package cql

import "fmt"

// ParseError is a structured parse failure carrying the offending token's
// position, both as a byte offset into the source and as a 1-based
// line/column pair. The bql statement layer wraps these errors after
// shifting Offset by the embedded SELECT's position inside the statement,
// so multi-statement scripts report positions in script coordinates.
type ParseError struct {
	// Offset is the byte offset of the offending token in the parsed
	// source.
	Offset int
	// Line and Col locate the offending token, 1-based, computed from
	// Offset over the parsed source.
	Line, Col int
	// Msg describes the failure.
	Msg string
}

// Error formats as "cql: line L col C: msg".
func (e *ParseError) Error() string {
	return fmt.Sprintf("cql: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Position converts a byte offset into a 1-based line/column pair over
// src. Offsets beyond src report the position just past the last byte.
func Position(src string, offset int) (line, col int) {
	if offset > len(src) {
		offset = len(src)
	}
	line, col = 1, 1
	for i := 0; i < offset; i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// errAt builds a ParseError at the given byte offset of src.
func errAt(src string, offset int, format string, args ...any) error {
	line, col := Position(src, offset)
	return &ParseError{Offset: offset, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
