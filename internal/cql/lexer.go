// Package cql parses the continuous-query dialect SABER's paper uses in
// Appendix A: SELECT queries over named streams with bracketed window
// specifications ("TaskEvents [range 60 slide 1]"), WHERE/GROUP BY/HAVING
// clauses, aggregation functions, and arithmetic select expressions.
package cql

import (
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber // integer or float literal, kept as text
	tokPunct  // single/double character punctuation, in token.text
	tokKeyword
)

type token struct {
	kind tokenKind
	text string // keywords lower-cased
	pos  int    // byte offset, for error messages
}

var keywords = map[string]bool{
	"select": true, "distinct": true, "from": true, "where": true,
	"group": true, "by": true, "having": true, "as": true,
	"and": true, "or": true, "not": true,
	"range": true, "rows": true, "slide": true, "unbounded": true,
	"partition": true,
	"sum":       true, "avg": true, "count": true, "min": true, "max": true,
}

// lex splits the input into tokens. It returns an error for characters the
// dialect does not use.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			// Line comment, as in the paper's listings.
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			lower := strings.ToLower(word)
			if keywords[lower] {
				toks = append(toks, token{tokKeyword, lower, i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		case c >= '0' && c <= '9':
			j := i + 1
			seenDot := false
			for j < len(src) {
				if src[j] >= '0' && src[j] <= '9' {
					j++
				} else if src[j] == '.' && !seenDot && j+1 < len(src) && src[j+1] >= '0' && src[j+1] <= '9' {
					seenDot = true
					j++
				} else {
					break
				}
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=":
				toks = append(toks, token{tokPunct, two, i})
				i += 2
				continue
			}
			switch c {
			case '(', ')', '[', ']', ',', '.', '*', '+', '-', '/', '%', '<', '>', '=':
				toks = append(toks, token{tokPunct, string(c), i})
				i++
			default:
				return nil, errAt(src, i, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
