package cql

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse feeds arbitrary query text through the full lexer + parser +
// validation path. The contract under fuzzing: malformed input must come
// back as an error — never a panic, hang or out-of-range access — and
// parsing must be deterministic (same input, same outcome), since the
// engine exposes Parse to application-supplied query strings.
func FuzzParse(f *testing.F) {
	// Well-formed queries covering every clause the dialect has...
	f.Add(`select * from TaskEvents [rows 1024 slide 512] where cpu > 0.5`)
	f.Add(`select timestamp, category, count(*) as n from TaskEvents [rows 8] group by category`)
	f.Add(`select distinct vehicle from PosSpeedStr [rows 16]`)
	f.Add(`select sum(cpu) as c, avg(ram) as r from TaskEvents [range 60 slide 1] group by jobId having c > 10.0`)
	f.Add(`select * from TaskEvents [rows 4] where cpu > -0.5 and -priority < 0 or not (ram >= 1.0)`)
	f.Add(`select (cpu + ram) * 2.0 as load from TaskEvents [rows 4] -- comment`)
	f.Add(`select * from SmartGridStr [range unbounded]`)
	f.Add(`select timestamp, value from SmartGridStr [range 3600 slide 1] where house = 7`)
	// ...and malformed ones seeding the error paths.
	f.Add(`from TaskEvents [rows 4]`)
	f.Add(`select * from Nope [rows 4]`)
	f.Add(`select * from TaskEvents [banana 4]`)
	f.Add(`select * from TaskEvents [rows 4] where cpu >`)
	f.Add(`select # from TaskEvents [rows 4]`)
	f.Add(`select * from TaskEvents [rows 4] where (cpu > 1`)
	f.Add(`select * from TaskEvents [rows 99999999999999999999999]`)
	f.Add(`select sum(`)
	f.Add(`[[[[`)
	f.Add(strings.Repeat(`(`, 1000))
	f.Add("select * from TaskEvents [rows 4]\x00")

	cat := catalog()
	f.Fuzz(func(t *testing.T, src string) {
		q1, err1 := Parse("fuzz", src, cat)
		if err1 == nil && q1 == nil {
			t.Fatalf("nil query without error for %q", src)
		}
		// Determinism: a second parse of the same input must agree.
		q2, err2 := Parse("fuzz", src, cat)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic outcome for %q: %v vs %v", src, err1, err2)
		}
		if err1 != nil {
			return
		}
		if q2 == nil || q1.Name != q2.Name || len(q1.Inputs) != len(q2.Inputs) {
			t.Fatalf("non-deterministic parse for %q", src)
		}
		// An accepted query must have survived its own validation.
		if err := q1.Validate(); err != nil {
			t.Fatalf("accepted query fails validation: %q: %v", src, err)
		}
	})
}

// FuzzLex isolates the tokenizer: it must terminate and either reject or
// fully consume every byte sequence, including invalid UTF-8.
func FuzzLex(f *testing.F) {
	f.Add(`select * from S [rows 4] where a > 1.5e3 -- tail`)
	f.Add("\xff\xfe")
	f.Add(`"unterminated`)
	f.Add(`a.b.c 1..2 <= >= != <>`)
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("token stream for %q does not end in EOF", src)
		}
		for _, tok := range toks {
			if tok.pos < 0 || tok.pos > len(src) {
				t.Fatalf("token %q position %d outside source of %d bytes", tok.text, tok.pos, len(src))
			}
			if tok.kind == tokIdent && !utf8.ValidString(tok.text) && utf8.ValidString(src) {
				t.Fatalf("lexer fabricated invalid UTF-8 in %q from valid input", tok.text)
			}
		}
	})
}
