package adapt

import "saber/internal/obs"

// Trace histogram names the controller reads. These are the canonical
// saber.trace.* names internal/obs.Tracer registers; keeping the list
// here (rather than importing stage constants) documents exactly which
// sensors drive ϕ.
const (
	histE2E     = "saber.trace.e2e"
	histQueue   = "saber.trace.queue"
	histIngest  = "saber.trace.ingest"
	histExecCPU = "saber.trace.exec.cpu"
	histKernel  = "saber.trace.gpu.kernel"
)

// histStaging are the GPU staging stages whose per-task cost is fixed
// (launch, DMA setup, host copies) regardless of how many tuples the
// task carries — the numerator of the dispatch-bound signal.
var histStaging = [...]string{
	"saber.trace.gpu.copyin",
	"saber.trace.gpu.movein",
	"saber.trace.gpu.moveout",
	"saber.trace.gpu.copyout",
}

// DeltaSignals derives one control tick's Signals from two registry
// snapshots: cur taken now, prev taken one tick ago. The trace
// histograms are cumulative, so the per-tick distribution is their
// bucket-wise difference (HistogramSnapshot.Sub).
func DeltaSignals(cur, prev obs.Snapshot) Signals {
	delta := func(name string) obs.HistogramSnapshot {
		return cur.Histograms[name].Sub(prev.Histograms[name])
	}

	e2e := delta(histE2E)
	sig := Signals{
		Tasks:     e2e.Count,
		E2EP99:    e2e.Quantile(0.99),
		QueueP99:  delta(histQueue).Quantile(0.99),
		IngestP99: delta(histIngest).Quantile(0.99),
	}

	// Service: the winning attempt's execution time, CPU exec and GPU
	// kernel pooled. Overhead: the staging stages, spread over the same
	// task population so a CPU-heavy tick reads as not dispatch-bound.
	cpu, gpu := delta(histExecCPU), delta(histKernel)
	execTasks := cpu.Count + gpu.Count
	if execTasks > 0 {
		sig.ServiceMean = (cpu.Sum + gpu.Sum) / execTasks
		var staging int64
		for _, name := range histStaging {
			staging += delta(name).Sum
		}
		sig.OverheadMean = staging / execTasks
	}
	return sig
}
