package adapt

import (
	"strings"
	"testing"
	"time"
)

// The simulation rig: every test drives the pure controller (Step)
// closed-loop against the deterministic Plant, so failures reproduce
// from the seed alone — rerun with the printed seed and the trajectory
// is byte-identical (see TESTING.md).

func testConfig() Config {
	return Config{
		MinPhi: 16 << 10,
		MaxPhi: 4 << 20,
		SLO:    20 * time.Millisecond,
	}
}

// phisAfter returns the trajectory's tail beyond the convergence
// prefix, for band assertions.
func phisAfter(r SimResult, tick int) []int {
	if tick > len(r.Phis) {
		tick = len(r.Phis)
	}
	return r.Phis[tick:]
}

// TestSteadyConverges: under a constant moderate load the controller
// must settle into a band and stay there — bounded total resizes, no
// movement at all in the second half of the run.
func TestSteadyConverges(t *testing.T) {
	const seed = 1
	plant := NewPlant(seed)
	// 800 MB/s steady: capacity(ϕ) crosses this around ϕ = 80 KiB, and
	// the latency budget is generous, so the controller should find a
	// comfortable ϕ and stop.
	res := Simulate(testConfig(), plant, 64<<10, 200, SteadyTrace(800e6))

	if n := res.Resizes(); n > 40 {
		t.Fatalf("seed %d: %d resizes over 200 steady ticks — not converging; trajectory:\n%s",
			seed, n, res.Trajectory())
	}
	late := res.Decisions[100:]
	for i, d := range late {
		if d.Action != Hold {
			t.Fatalf("seed %d: resize (%s) at tick %d after convergence window; trajectory:\n%s",
				seed, d.Reason, 100+i, res.Trajectory())
		}
	}
}

// TestStepBurstRecovers: a step burst must push ϕ down (shedding
// latency) and the controller must return to a steady hold after the
// burst passes — without a limit cycle.
func TestStepBurstRecovers(t *testing.T) {
	const seed = 2
	plant := NewPlant(seed)
	cfg := testConfig()
	// Base 400 MB/s, burst to 1.6 GB/s (near MaxRate — heavy queueing)
	// for ticks [60, 100).
	res := Simulate(cfg, plant, 256<<10, 240, StepBurstTrace(400e6, 1.6e9, 60, 40))

	// During the burst the backlog forces queue p99 over budget: the
	// controller must have shrunk below its pre-burst ϕ.
	minDuring := cfg.MaxPhi
	for _, phi := range res.Phis[60:100] {
		if phi < minDuring {
			minDuring = phi
		}
	}
	if minDuring >= res.Phis[59] {
		t.Fatalf("seed %d: burst did not shrink ϕ (pre-burst %d, min during %d); trajectory:\n%s",
			seed, res.Phis[59], minDuring, res.Trajectory())
	}

	// Well after the burst the controller is calm again: no resizes over
	// the last 60 ticks.
	for i, d := range res.Decisions[180:] {
		if d.Action != Hold {
			t.Fatalf("seed %d: still resizing (%s) at tick %d, 80+ ticks after the burst; trajectory:\n%s",
				seed, d.Reason, 180+i, res.Trajectory())
		}
	}
}

// TestDiurnalRampBounded: a slow diurnal ramp must be tracked with a
// bounded number of steps per period — a well-damped controller moves a
// few times per phase, not every tick.
func TestDiurnalRampBounded(t *testing.T) {
	const seed = 3
	plant := NewPlant(seed)
	// One 100-tick period ramping 200 MB/s → 1.4 GB/s → 200 MB/s, four
	// periods.
	res := Simulate(testConfig(), plant, 128<<10, 400, DiurnalTrace(200e6, 1.4e9, 100))

	if n := res.Resizes(); n > 120 {
		t.Fatalf("seed %d: %d resizes over 400 diurnal ticks (>30%% duty) — thrashing; trajectory:\n%s",
			seed, n, res.Trajectory())
	}
	// ϕ must actually follow the load: the trajectory is not allowed to
	// pin to one bound for the whole run.
	lo, hi := res.Phis[0], res.Phis[0]
	for _, phi := range res.Phis {
		if phi < lo {
			lo = phi
		}
		if phi > hi {
			hi = phi
		}
	}
	if lo == hi {
		t.Fatalf("seed %d: ϕ never moved under a diurnal ramp; trajectory:\n%s", seed, res.Trajectory())
	}
}

// TestOscillatorNoLimitCycle: the adversarial square-wave load flips at
// the controller's own cadence, trying to resonate. Step damping must
// bleed the oscillation out: the resize rate over the last quarter of
// the run must be well below the flip rate, and the late ϕ range must
// be narrower than the early range.
func TestOscillatorNoLimitCycle(t *testing.T) {
	const seed = 4
	plant := NewPlant(seed)
	// Flip every 6 ticks — twice the controller's HoldTicks+1 cadence, the
	// resonance-friendly shape.
	res := Simulate(testConfig(), plant, 256<<10, 400, OscillatorTrace(300e6, 1.3e9, 6))

	late := res.Decisions[300:]
	resizes := 0
	for _, d := range late {
		if d.Action != Hold {
			resizes++
		}
	}
	// 100 late ticks contain ~16 flips; a limit cycle would resize on
	// most of them.
	if resizes > 8 {
		t.Fatalf("seed %d: %d resizes in the last 100 oscillator ticks — limit cycle; trajectory:\n%s",
			seed, resizes, res.Trajectory())
	}

	span := func(phis []int) int {
		lo, hi := phis[0], phis[0]
		for _, p := range phis {
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		return hi - lo
	}
	if early, lateSpan := span(res.Phis[:100]), span(phisAfter(res, 300)); lateSpan > early && early > 0 {
		t.Fatalf("seed %d: oscillation widening (early span %d, late span %d); trajectory:\n%s",
			seed, early, lateSpan, res.Trajectory())
	}
}

// TestSeedDeterminism: the byte-identity property the whole rig rests
// on — same seed, same config ⇒ identical trajectory string; different
// seed ⇒ (almost surely) different noise draws, same qualitative shape.
func TestSeedDeterminism(t *testing.T) {
	run := func(seed int64) SimResult {
		return Simulate(testConfig(), NewPlant(seed), 64<<10, 300, DiurnalTrace(200e6, 1.2e9, 75))
	}
	a, b := run(7), run(7)
	if a.Trajectory() != b.Trajectory() {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a.Trajectory(), b.Trajectory())
	}
	if len(a.Signals) != len(b.Signals) {
		t.Fatalf("signal traces differ in length: %d vs %d", len(a.Signals), len(b.Signals))
	}
	for i := range a.Signals {
		if a.Signals[i] != b.Signals[i] {
			t.Fatalf("same seed, different signals at tick %d: %+v vs %+v", i, a.Signals[i], b.Signals[i])
		}
	}
}

// TestReplayMatchesSimulate: replaying the signal trace a closed-loop
// run recorded must reproduce the closed-loop decisions exactly — the
// property that lets captured engine telemetry be debugged offline.
func TestReplayMatchesSimulate(t *testing.T) {
	cfg := testConfig()
	sim := Simulate(cfg, NewPlant(11), 64<<10, 200, StepBurstTrace(300e6, 1.5e9, 50, 30))
	rep := Replay(cfg, 64<<10, sim.Signals)
	if sim.Trajectory() != rep.Trajectory() {
		t.Fatalf("replay diverged from closed loop:\n%s\nvs\n%s", sim.Trajectory(), rep.Trajectory())
	}
}

// TestTrajectoryShape sanity-checks the trajectory serialization format
// tests print on failure: one "<letter><phi>" token per tick.
func TestTrajectoryShape(t *testing.T) {
	res := Simulate(testConfig(), NewPlant(5), 64<<10, 10, SteadyTrace(500e6))
	toks := strings.Fields(res.Trajectory())
	if len(toks) != 10 {
		t.Fatalf("trajectory has %d tokens, want 10: %q", len(toks), res.Trajectory())
	}
	for _, tok := range toks {
		switch tok[0] {
		case 'g', 's', 'h':
		default:
			t.Fatalf("bad action letter in token %q", tok)
		}
	}
}
