package adapt

import (
	"fmt"
	"math/rand"
	"strings"
)

// Plant is a deterministic closed-loop model of the engine's response
// to ϕ, good enough to exercise every controller regime without a live
// engine: capacity rises with ϕ as the fixed per-task overhead
// amortizes, batching delay rises with ϕ as tasks take longer to fill,
// and a backlog integrator turns sustained overload into queue wait.
// One Plant tick produces the Signals the controller would have read
// from the trace histograms over that interval.
type Plant struct {
	// MaxRate is the asymptotic processing capacity in bytes/sec as
	// ϕ → ∞ (all overhead amortized).
	MaxRate float64
	// OverheadNs is the fixed per-task cost in nanoseconds (GPU launch +
	// staging); capacity(ϕ) = MaxRate · ϕ/(ϕ + OverheadNs·MaxRate/1e9).
	OverheadNs float64
	// TickSec is the control interval the signals integrate over.
	TickSec float64
	// Noise is the relative jitter applied to the latency signals,
	// drawn from the seeded source (0 disables).
	Noise float64

	rnd     *rand.Rand
	backlog float64 // bytes queued beyond capacity
}

// NewPlant creates a plant with sane defaults and a seeded noise
// source: 2 GB/s asymptotic capacity, 60µs fixed per-task overhead,
// 50ms ticks, 5% jitter.
func NewPlant(seed int64) *Plant {
	return &Plant{
		MaxRate:    2e9,
		OverheadNs: 60_000,
		TickSec:    0.05,
		Noise:      0.05,
		rnd:        rand.New(rand.NewSource(seed)),
	}
}

// halfPhi is the ϕ at which capacity reaches half of MaxRate: the
// break-even point where per-task overhead equals per-byte work.
func (p *Plant) halfPhi() float64 {
	return p.OverheadNs * p.MaxRate / 1e9
}

// Capacity returns the plant's throughput in bytes/sec at task size
// phi.
func (p *Plant) Capacity(phi int) float64 {
	f := float64(phi)
	return p.MaxRate * f / (f + p.halfPhi())
}

// Tick advances the plant one control interval at offered load rate
// (bytes/sec) with the engine running task size phi, and returns the
// Signals the controller would observe.
func (p *Plant) Tick(phi int, rate float64) Signals {
	f := float64(phi)
	cap := p.Capacity(phi)

	// Backlog integrates the overload; drained at capacity when the
	// offered rate dips back under.
	p.backlog += (rate - cap) * p.TickSec
	if p.backlog < 0 {
		p.backlog = 0
	}

	// Per-task times in nanoseconds.
	serviceNs := f / p.MaxRate * 1e9
	overheadNs := p.OverheadNs
	batchNs := 0.0
	if rate > 0 {
		batchNs = f / rate * 1e9 // time for the ring to fill one task
	}
	queueNs := 0.0
	if cap > 0 {
		queueNs = p.backlog / cap * 1e9
	}
	// Mirrors the live trace semantics: e2e starts at the task cut, so
	// the batching delay is reported only through IngestP99 and the
	// controller reads the full journey as TailP99 = e2e + ingest.
	e2eNs := queueNs + serviceNs + overheadNs

	jitter := func(v float64) int64 {
		if p.Noise > 0 {
			v *= 1 + p.Noise*(2*p.rnd.Float64()-1)
		}
		if v < 0 {
			v = 0
		}
		return int64(v)
	}

	tasks := int64(rate * p.TickSec / f)
	if p.backlog > 0 && tasks < 1 {
		tasks = 1 // draining: something is always finishing
	}
	return Signals{
		Tasks:        tasks,
		E2EP99:       jitter(e2eNs * 1.2), // tail above the mean
		QueueP99:     jitter(queueNs * 1.2),
		IngestP99:    jitter(batchNs),
		ServiceMean:  jitter(serviceNs),
		OverheadMean: jitter(overheadNs),
	}
}

// Rate traces. Each returns offered load in bytes/sec for tick i —
// plain functions so tests can compose or shift them.

// SteadyTrace is a constant offered rate.
func SteadyTrace(rate float64) func(i int) float64 {
	return func(int) float64 { return rate }
}

// StepBurstTrace holds base rate, steps to burst for ticks
// [start, start+dur), then returns to base.
func StepBurstTrace(base, burst float64, start, dur int) func(i int) float64 {
	return func(i int) float64 {
		if i >= start && i < start+dur {
			return burst
		}
		return base
	}
}

// DiurnalTrace ramps linearly from lo to hi and back over period ticks,
// repeating — the diurnal load curve compressed to test time.
func DiurnalTrace(lo, hi float64, period int) func(i int) float64 {
	return func(i int) float64 {
		pos := i % period
		half := period / 2
		var frac float64
		if pos < half {
			frac = float64(pos) / float64(half)
		} else {
			frac = float64(period-pos) / float64(period-half)
		}
		return lo + (hi-lo)*frac
	}
}

// OscillatorTrace is the adversarial shape: offered rate flips between
// lo and hi every flip ticks, trying to resonate with the controller's
// own step cadence and induce a limit cycle.
func OscillatorTrace(lo, hi float64, flip int) func(i int) float64 {
	return func(i int) float64 {
		if (i/flip)%2 == 0 {
			return lo
		}
		return hi
	}
}

// SimResult is one closed-loop simulation's full record.
type SimResult struct {
	Phis      []int      // ϕ after each tick
	Decisions []Decision // the tick's decision
	Signals   []Signals  // what the controller observed
}

// Resizes counts the non-hold ticks.
func (r SimResult) Resizes() int {
	n := 0
	for _, d := range r.Decisions {
		if d.Action != Hold {
			n++
		}
	}
	return n
}

// Trajectory serializes the ϕ trajectory with each tick's action
// letter (g/s/h). Byte-comparing two trajectories is the seed-
// determinism check: same seed ⇒ identical string.
func (r SimResult) Trajectory() string {
	var b strings.Builder
	for i, phi := range r.Phis {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s%d", r.Decisions[i].Action.String()[:1], phi)
	}
	return b.String()
}

// Simulate runs the controller closed-loop against the plant for ticks
// control intervals, with offered load given by rate. phi0 seeds the
// trajectory. Everything is deterministic given the plant's seed.
func Simulate(cfg Config, plant *Plant, phi0, ticks int, rate func(i int) float64) SimResult {
	cfg = cfg.withDefaults()
	st := State{Phi: clampPhi(phi0, cfg)}
	res := SimResult{
		Phis:      make([]int, 0, ticks),
		Decisions: make([]Decision, 0, ticks),
		Signals:   make([]Signals, 0, ticks),
	}
	for i := 0; i < ticks; i++ {
		sig := plant.Tick(st.Phi, rate(i))
		var d Decision
		st, d = Step(cfg, st, sig)
		res.Phis = append(res.Phis, st.Phi)
		res.Decisions = append(res.Decisions, d)
		res.Signals = append(res.Signals, sig)
	}
	return res
}

// Replay drives the controller over a pre-recorded signal trace (no
// plant): the open-loop form used to replay captured engine telemetry.
func Replay(cfg Config, phi0 int, trace []Signals) SimResult {
	cfg = cfg.withDefaults()
	st := State{Phi: clampPhi(phi0, cfg)}
	res := SimResult{
		Phis:      make([]int, 0, len(trace)),
		Decisions: make([]Decision, 0, len(trace)),
		Signals:   trace,
	}
	for _, sig := range trace {
		var d Decision
		st, d = Step(cfg, st, sig)
		res.Phis = append(res.Phis, st.Phi)
		res.Decisions = append(res.Decisions, d)
	}
	return res
}
