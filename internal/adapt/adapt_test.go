package adapt

import (
	"strings"
	"testing"
	"time"
)

// Unit tests for the pure Step core: each case pins one branch of the
// decision rule with hand-built signals, no plant.

// calmSignals reads as comfortably in-band: busy enough to trust, low
// tail, no overhead pressure.
func calmSignals() Signals {
	return Signals{
		Tasks:        100,
		E2EP99:       int64(5 * time.Millisecond),
		QueueP99:     int64(1 * time.Millisecond),
		IngestP99:    int64(1 * time.Millisecond),
		ServiceMean:  int64(2 * time.Millisecond),
		OverheadMean: int64(100 * time.Microsecond),
	}
}

func TestStepIdleHolds(t *testing.T) {
	cfg := testConfig()
	sig := Signals{Tasks: 1, E2EP99: int64(time.Hour)} // terrifying tail, but only 1 task
	st, d := Step(cfg, State{Phi: 128 << 10}, sig)
	if d.Action != Hold {
		t.Fatalf("idle tick resized: %+v", d)
	}
	if st.Phi != 128<<10 {
		t.Fatalf("idle tick moved ϕ to %d", st.Phi)
	}
	if !strings.Contains(d.Reason, "idle") {
		t.Fatalf("reason %q does not mention idle", d.Reason)
	}
}

func TestStepShrinkOverSLO(t *testing.T) {
	cfg := testConfig() // SLO 20ms
	sig := calmSignals()
	sig.E2EP99 = int64(30 * time.Millisecond)
	st, d := Step(cfg, State{Phi: 256 << 10}, sig)
	if d.Action != Shrink {
		t.Fatalf("want shrink over SLO, got %+v", d)
	}
	if st.Phi >= 256<<10 {
		t.Fatalf("shrink did not reduce ϕ: %d", st.Phi)
	}
	if st.Phi%phiQuantum != 0 {
		t.Fatalf("ϕ %d not quantum-aligned", st.Phi)
	}
}

// TestStepShrinkOnIngestTail: the case the live engine hits at low
// rate — e2e alone is comfortably under the SLO, but the batching delay
// (ingest tail) pushes the combined journey over. The controller must
// read TailP99 = e2e + ingest and shrink.
func TestStepShrinkOnIngestTail(t *testing.T) {
	cfg := testConfig() // SLO 20ms
	sig := calmSignals()
	sig.E2EP99 = int64(8 * time.Millisecond)     // fine on its own
	sig.IngestP99 = int64(15 * time.Millisecond) // ring takes ages to fill a task
	st, d := Step(cfg, State{Phi: 1 << 20}, sig)
	if d.Action != Shrink {
		t.Fatalf("want shrink on ingest-dominated tail, got %+v", d)
	}
	if !strings.Contains(d.Reason, "ingest") {
		t.Fatalf("reason %q should attribute the tail", d.Reason)
	}
	if st.Phi >= 1<<20 {
		t.Fatalf("ϕ did not shrink: %d", st.Phi)
	}
}

func TestStepShrinkOnQueueBudget(t *testing.T) {
	cfg := testConfig() // queue budget = 0.5 · 20ms = 10ms
	sig := calmSignals()
	sig.QueueP99 = int64(12 * time.Millisecond) // over budget, e2e still fine
	_, d := Step(cfg, State{Phi: 256 << 10}, sig)
	if d.Action != Shrink {
		t.Fatalf("want shrink on queue budget, got %+v", d)
	}
}

func TestStepGrowWhenDispatchBound(t *testing.T) {
	cfg := testConfig()
	sig := calmSignals()
	sig.ServiceMean = int64(1 * time.Millisecond)
	sig.OverheadMean = int64(1 * time.Millisecond) // 50% overhead share
	st, d := Step(cfg, State{Phi: 64 << 10}, sig)
	if d.Action != Grow {
		t.Fatalf("want grow when dispatch-bound with headroom, got %+v", d)
	}
	if st.Phi <= 64<<10 {
		t.Fatalf("grow did not increase ϕ: %d", st.Phi)
	}
}

// TestStepDeadbandHolds: dispatch-bound but the tail sits between
// Headroom·SLO and SLO — the hysteresis band where neither rule fires.
func TestStepDeadbandHolds(t *testing.T) {
	cfg := testConfig() // headroom ceiling = 0.6 · 20ms = 12ms
	sig := calmSignals()
	sig.ServiceMean = int64(1 * time.Millisecond)
	sig.OverheadMean = int64(1 * time.Millisecond)
	sig.E2EP99 = int64(14 * time.Millisecond) // over headroom, under SLO
	_, d := Step(cfg, State{Phi: 64 << 10}, sig)
	if d.Action != Hold {
		t.Fatalf("want hold in deadband, got %+v", d)
	}
}

func TestStepCooldownHolds(t *testing.T) {
	cfg := testConfig()
	sig := calmSignals()
	sig.E2EP99 = int64(30 * time.Millisecond)
	st := State{Phi: 256 << 10}
	var d Decision
	st, d = Step(cfg, st, sig)
	if d.Action != Shrink {
		t.Fatalf("setup: want shrink, got %+v", d)
	}
	phi := st.Phi
	// The next HoldTicks(2) ticks must hold even though the signal still
	// screams shrink.
	for i := 0; i < 2; i++ {
		st, d = Step(cfg, st, sig)
		if d.Action != Hold || st.Phi != phi {
			t.Fatalf("cooldown tick %d resized: %+v (ϕ %d)", i, d, st.Phi)
		}
		if !strings.Contains(d.Reason, "cooldown") {
			t.Fatalf("cooldown tick %d reason %q", i, d.Reason)
		}
	}
	// Cooldown spent: the persistent signal acts again.
	st, d = Step(cfg, st, sig)
	if d.Action != Shrink || st.Phi >= phi {
		t.Fatalf("post-cooldown tick did not shrink: %+v (ϕ %d)", d, st.Phi)
	}
}

func TestStepAtBoundClampedHold(t *testing.T) {
	cfg := testConfig()
	sig := calmSignals()
	sig.E2EP99 = int64(30 * time.Millisecond)
	st, d := Step(cfg, State{Phi: cfg.MinPhi}, sig)
	if d.Action != Hold || !d.Clamped {
		t.Fatalf("want clamped hold at MinPhi, got %+v", d)
	}
	if st.Phi != cfg.MinPhi {
		t.Fatalf("ϕ left the bound: %d", st.Phi)
	}
}

// TestStepDampingFloorProgress: at the 1/16 damping floor a grow of a
// small ϕ quantizes back to the same value — the forced +quantum keeps
// the controller from freezing. (Shrink cannot freeze: quantization
// rounds down, so it always moves.)
func TestStepDampingFloorProgress(t *testing.T) {
	cfg := testConfig()
	cfg.MinPhi = 1 << 10
	sig := calmSignals()
	sig.ServiceMean = int64(1 * time.Millisecond)
	sig.OverheadMean = int64(1 * time.Millisecond) // dispatch-bound
	// ϕ=1024 at scale 1/16: 1024·1.03125 = 1056 → quantized back to 1024.
	st := State{Phi: 1 << 10, StepScale: stepScaleFloor}
	st2, d := Step(cfg, st, sig)
	if d.Action != Grow {
		t.Fatalf("want grow at damping floor, got %+v", d)
	}
	if st2.Phi != st.Phi+phiQuantum {
		t.Fatalf("want forced one-quantum step %d → %d, got %d",
			st.Phi, st.Phi+phiQuantum, st2.Phi)
	}
}

// TestStepReversalDamping: a direction reversal halves StepScale; the
// same direction again recovers it.
func TestStepReversalDamping(t *testing.T) {
	cfg := testConfig()
	grow := calmSignals()
	grow.ServiceMean = int64(1 * time.Millisecond)
	grow.OverheadMean = int64(1 * time.Millisecond)
	shrink := calmSignals()
	shrink.E2EP99 = int64(30 * time.Millisecond)

	st := State{Phi: 256 << 10, LastDir: +1, StepScale: 1}
	st, d := Step(cfg, st, shrink) // reversal
	if d.Action != Shrink {
		t.Fatalf("setup: want shrink, got %+v", d)
	}
	if st.StepScale != 0.5 {
		t.Fatalf("reversal should halve StepScale to 0.5, got %v", st.StepScale)
	}
	st.Cooldown = 0
	st, d = Step(cfg, st, shrink) // same direction: recovery
	if d.Action != Shrink {
		t.Fatalf("want repeated shrink, got %+v", d)
	}
	if st.StepScale != 0.75 {
		t.Fatalf("steady movement should recover StepScale ×1.5 to 0.75, got %v", st.StepScale)
	}
	_ = grow
}

// TestStepCalmRecoversScale: calmReset in-band ticks restore StepScale
// to 1.
func TestStepCalmRecoversScale(t *testing.T) {
	cfg := testConfig()
	st := State{Phi: 128 << 10, StepScale: stepScaleFloor, LastDir: -1}
	sig := calmSignals()
	for i := 0; i < calmReset; i++ {
		var d Decision
		st, d = Step(cfg, st, sig)
		if d.Action != Hold {
			t.Fatalf("calm tick %d resized: %+v", i, d)
		}
	}
	if st.StepScale != 1 {
		t.Fatalf("StepScale not restored after %d calm ticks: %v", calmReset, st.StepScale)
	}
}

func TestStepDefaultsApplied(t *testing.T) {
	// Zero config + zero state must still behave: defaults land ϕ at
	// MinPhi and the decision is well-formed.
	st, d := Step(Config{}, State{}, calmSignals())
	if st.Phi != 4<<10 {
		t.Fatalf("default MinPhi not applied: ϕ %d", st.Phi)
	}
	if d.Reason == "" {
		t.Fatalf("empty reason")
	}
}

func TestOverheadShare(t *testing.T) {
	s := Signals{ServiceMean: 300, OverheadMean: 100}
	if got := s.OverheadShare(); got != 0.25 {
		t.Fatalf("OverheadShare = %v, want 0.25", got)
	}
	if got := (Signals{}).OverheadShare(); got != 0 {
		t.Fatalf("zero signals OverheadShare = %v", got)
	}
}
