package adapt

import (
	"math"
	"sync/atomic"

	"saber/internal/obs"
)

// Controller is the live wrapper around the pure Step function: it
// snapshots a registry each tick, derives the per-tick Signals delta,
// advances the controller state and hands the new ϕ to the apply
// callback (typically engine.SetTaskSize). The caller owns the ticker —
// Controller has no goroutine of its own, which keeps the engine's
// shutdown ordering in one place.
//
// Tick is not safe for concurrent use; call it from one control loop.
type Controller struct {
	cfg   Config
	apply func(phi int)

	state State
	prev  obs.Snapshot
	first bool

	// phi mirrors state.Phi for the saber.adapt.phi gauge, which the
	// admin endpoint snapshots from other goroutines. overloaded mirrors
	// the last decision's last-rung signal the same way.
	phi        atomic.Int64
	stepScale  atomic.Uint64 // float64 bits
	overloaded atomic.Int64  // 0/1

	ticks, grows, shrinks, holds, clamps, overloads *obs.Counter
}

// NewController creates a controller starting at phi0 bytes (clamped
// into [MinPhi, MaxPhi]). reg supplies both the sensor histograms and
// the saber.adapt.* metrics; apply receives every accepted resize (it
// is not called for holds) and may be nil.
func NewController(cfg Config, phi0 int, reg *obs.Registry, apply func(phi int)) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:   cfg,
		apply: apply,
		state: State{Phi: clampPhi(phi0, cfg)},
		first: true,

		ticks:     reg.Counter("saber.adapt.ticks"),
		grows:     reg.Counter("saber.adapt.grow"),
		shrinks:   reg.Counter("saber.adapt.shrink"),
		holds:     reg.Counter("saber.adapt.hold"),
		clamps:    reg.Counter("saber.adapt.clamped"),
		overloads: reg.Counter("saber.adapt.overload.ticks"),
	}
	c.phi.Store(int64(c.state.Phi))
	c.stepScale.Store(math.Float64bits(1))
	reg.RegisterFunc("saber.adapt.phi", c.phi.Load)
	reg.RegisterFunc("saber.adapt.overloaded", c.overloaded.Load)
	reg.RegisterFloatFunc("saber.adapt.step_scale", func() float64 {
		return math.Float64frombits(c.stepScale.Load())
	})
	return c
}

// Phi returns the controller's current task size.
func (c *Controller) Phi() int { return int(c.phi.Load()) }

// Tick runs one control iteration against the registry snapshot cur.
// The first tick only establishes the baseline snapshot (there is no
// delta yet) and always holds.
func (c *Controller) Tick(cur obs.Snapshot) Decision {
	c.ticks.Inc()
	if c.first {
		c.first = false
		c.prev = cur
		return Decision{Action: Hold, Phi: c.state.Phi, Reason: "baseline tick"}
	}
	sig := DeltaSignals(cur, c.prev)
	c.prev = cur

	var d Decision
	c.state, d = Step(c.cfg, c.state, sig)
	c.phi.Store(int64(c.state.Phi))
	c.stepScale.Store(math.Float64bits(c.state.StepScale))
	if d.Clamped {
		c.clamps.Inc()
	}
	if d.Overloaded {
		c.overloads.Inc()
		c.overloaded.Store(1)
	} else {
		c.overloaded.Store(0)
	}
	switch d.Action {
	case Grow:
		c.grows.Inc()
	case Shrink:
		c.shrinks.Inc()
	default:
		c.holds.Inc()
		return d
	}
	if c.apply != nil {
		c.apply(d.Phi)
	}
	return d
}
