// Package adapt implements SABER's adaptive task sizing: a feedback
// controller that resizes ϕ — the query task size the dispatcher cuts —
// between a configured [MinPhi, MaxPhi] using the per-stage latency
// histograms of internal/obs as its sensor.
//
// SABER fixes ϕ statically, which trades GPU dispatch efficiency
// against queueing and tail latency once and for all; LMStream
// (PAPERS.md) shows the trade should move with the load. The controller
// implements that policy:
//
//   - shrink ϕ when the tail latency or the queue-wait p99 exceeds
//     the configured latency SLO (a too-large batch is either waiting
//     to fill at low rate — batching delay — or clogging the queue);
//   - grow ϕ when the pipeline is dispatch-bound — the fixed per-task
//     overhead (GPU launch, DMA staging, scheduling) is a large
//     fraction of per-task service time — and the measured tail has
//     headroom under the SLO, so larger batches buy throughput without
//     spending the latency budget.
//
// Oscillation is suppressed twice over: a deadband between the shrink
// threshold (the SLO) and the grow ceiling (Headroom·SLO) where the
// controller holds, plus hold-ticks after every resize and step damping
// that halves the step size whenever the direction reverses.
//
// The decision core, Step, is a pure function of (Config, State,
// Signals): no clocks, no engine, no atomics. Tests replay canned or
// simulated signal traces through it (see sim.go) and the live
// Controller (controller.go) merely feeds it real histogram deltas.
package adapt

import (
	"fmt"
	"time"
)

// Config tunes the controller. The zero value is not runnable; Step
// applies defaults for every unset knob, so callers only need MinPhi,
// MaxPhi and SLO.
type Config struct {
	// MinPhi and MaxPhi bound ϕ in bytes. Defaults 4 KiB and 4 MiB.
	MinPhi, MaxPhi int
	// SLO is the end-to-end p99 latency target. Default 50ms.
	SLO time.Duration
	// Interval is the live controller's tick period (the pure Step is
	// tickless — this is consumed by the engine's control loop only).
	// Default 50ms.
	Interval time.Duration
	// QueueFrac is the share of the SLO budgeted to queue wait: the
	// controller shrinks when queue-wait p99 alone exceeds
	// QueueFrac·SLO, before the e2e tail blows. Default 0.5.
	QueueFrac float64
	// Headroom caps growth: grow only while e2e p99 < Headroom·SLO.
	// The band between Headroom·SLO and SLO is the hysteresis deadband
	// where the controller holds. Default 0.6.
	Headroom float64
	// OverheadFrac is the dispatch-bound threshold: grow when the fixed
	// per-task overhead share of service time is at least this.
	// Default 0.35.
	OverheadFrac float64
	// GrowStep and ShrinkStep are the multiplicative resize steps at
	// full step scale. Defaults 1.5 and 0.65.
	GrowStep, ShrinkStep float64
	// HoldTicks is how many ticks the controller holds after a resize
	// before it may resize again (hysteresis). Default 2.
	HoldTicks int
	// MinTasks is the fewest finished tasks a tick must carry for its
	// percentiles to be trusted; quieter ticks hold. Default 4.
	MinTasks int64
}

func (c Config) withDefaults() Config {
	if c.MinPhi <= 0 {
		c.MinPhi = 4 << 10
	}
	if c.MaxPhi <= 0 {
		c.MaxPhi = 4 << 20
	}
	if c.MaxPhi < c.MinPhi {
		c.MaxPhi = c.MinPhi
	}
	if c.SLO <= 0 {
		c.SLO = 50 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.QueueFrac <= 0 {
		c.QueueFrac = 0.5
	}
	if c.Headroom <= 0 {
		c.Headroom = 0.6
	}
	if c.OverheadFrac <= 0 {
		c.OverheadFrac = 0.35
	}
	if c.GrowStep <= 1 {
		c.GrowStep = 1.5
	}
	if c.ShrinkStep <= 0 || c.ShrinkStep >= 1 {
		c.ShrinkStep = 0.65
	}
	if c.HoldTicks <= 0 {
		c.HoldTicks = 2
	}
	if c.MinTasks <= 0 {
		c.MinTasks = 4
	}
	return c
}

// Signals is one control tick's sensor reading, derived from the
// per-tick delta of the obs latency histograms (see DeltaSignals). It
// is plain data so recorded traces replay through Step without an
// engine.
type Signals struct {
	// Tasks is the number of task traces finished during the tick.
	Tasks int64
	// E2EP99, QueueP99 and IngestP99 are the tick's tail latencies in
	// nanoseconds: end-to-end (task cut → result delivered), queue wait,
	// and ingest batching delay (oldest byte waiting in the ring before
	// the cut). The e2e trace starts at the task cut, so the batching
	// delay — the very cost a large ϕ inflicts at low rate — is only
	// visible in IngestP99; TailP99 combines the two.
	E2EP99, QueueP99, IngestP99 int64
	// ServiceMean is the mean per-task execution time (CPU exec or GPU
	// kernel) in nanoseconds.
	ServiceMean int64
	// OverheadMean is the mean fixed per-task overhead in nanoseconds:
	// the GPU staging stages (copyin/movein/moveout/copyout) whose cost
	// does not shrink with the batch — the dispatch-bound signal.
	OverheadMean int64
}

// TailP99 is the controller's latency signal: the ingest batching tail
// plus the post-cut end-to-end tail. The two distributions are
// independent enough that the sum upper-bounds the full tuple-journey
// p99 — conservative in exactly the direction an SLO wants.
func (s Signals) TailP99() int64 { return s.E2EP99 + s.IngestP99 }

// OverheadShare is the fixed-overhead fraction of per-task service
// time, in [0, 1]. High values mean the pipeline is dispatch-bound and
// growing ϕ buys throughput.
func (s Signals) OverheadShare() float64 {
	total := s.ServiceMean + s.OverheadMean
	if total <= 0 {
		return 0
	}
	return float64(s.OverheadMean) / float64(total)
}

// State is the controller's memory between ticks. The zero value plus
// a starting Phi is a valid initial state.
type State struct {
	// Phi is the current task size in bytes.
	Phi int
	// Cooldown is how many more ticks the controller holds after the
	// last resize.
	Cooldown int
	// LastDir is the direction of the last resize: +1 grow, -1 shrink,
	// 0 none yet.
	LastDir int
	// StepScale damps the resize step in (0, 1]: halved on every
	// direction reversal, recovered while the controller moves steadily
	// or rests in band. 0 means 1 (fresh state).
	StepScale float64
	// CalmTicks counts consecutive in-band holds; a long calm stretch
	// restores StepScale to 1.
	CalmTicks int
}

// Action is what a tick decided.
type Action uint8

// Actions.
const (
	Hold Action = iota
	Grow
	Shrink
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Grow:
		return "grow"
	case Shrink:
		return "shrink"
	default:
		return "hold"
	}
}

// Decision is one tick's outcome: the action taken, the resulting ϕ,
// whether the step hit a bound, and a deterministic reason string for
// logs and postmortems.
type Decision struct {
	Action  Action
	Phi     int
	Clamped bool
	Reason  string
	// Overloaded is the ladder's last-rung signal: the tick was over the
	// SLO while ϕ already sat at MinPhi — shrinking has nothing left to
	// give, so the only remaining remedy is deliberate load shedding
	// (see internal/overload). It clears as soon as the tail recovers or
	// ϕ has room to shrink again.
	Overloaded bool
}

// stepScaleFloor bounds damping: even a pathological oscillator keeps a
// 1/16-scale step so the controller never freezes entirely.
const stepScaleFloor = 1.0 / 16

// calmReset is the number of consecutive in-band holds after which the
// step scale recovers to 1 (the disturbance that caused the damping has
// passed).
const calmReset = 8

// phiQuantum aligns ϕ steps; sub-64-byte wiggle is below any tuple
// size and would only make trajectories noisy.
const phiQuantum = 64

// Step advances the controller by one tick. It is a pure function:
// identical (cfg, st, sig) always yield the identical (State,
// Decision), which is what makes the simulation rig deterministic.
func Step(cfg Config, st State, sig Signals) (State, Decision) {
	cfg = cfg.withDefaults()
	if st.StepScale <= 0 {
		st.StepScale = 1
	}
	if st.Phi <= 0 {
		st.Phi = cfg.MinPhi
	}
	st.Phi = clampPhi(st.Phi, cfg)

	hold := func(reason string) (State, Decision) {
		if st.Cooldown > 0 {
			st.Cooldown--
		}
		return st, Decision{Action: Hold, Phi: st.Phi, Reason: reason}
	}

	if sig.Tasks < cfg.MinTasks {
		// Too quiet to trust the percentiles; also counts as calm.
		st.CalmTicks++
		if st.CalmTicks >= calmReset {
			st.StepScale = 1
		}
		return hold(fmt.Sprintf("idle: %d tasks < %d", sig.Tasks, cfg.MinTasks))
	}

	slo := int64(cfg.SLO)
	queueBudget := int64(float64(slo) * cfg.QueueFrac)
	tail := sig.TailP99()
	overSLO := tail > slo || sig.QueueP99 > queueBudget
	// Over the SLO with ϕ already pinned at the floor: every decision
	// this tick returns carries the last-rung overload signal.
	overloaded := overSLO && st.Phi <= cfg.MinPhi
	inHeadroom := float64(tail) < cfg.Headroom*float64(slo) &&
		float64(sig.QueueP99) < cfg.Headroom*float64(queueBudget)
	dispatchBound := sig.OverheadShare() >= cfg.OverheadFrac

	want := 0
	var why string
	switch {
	case overSLO:
		want = -1
		why = fmt.Sprintf("over SLO: tail p99 %v (e2e %v + ingest %v), queue p99 %v (slo %v)",
			time.Duration(tail), time.Duration(sig.E2EP99), time.Duration(sig.IngestP99),
			time.Duration(sig.QueueP99), cfg.SLO)
	case dispatchBound && inHeadroom:
		want = +1
		why = fmt.Sprintf("dispatch-bound: overhead %.0f%% of service, tail p99 %v under %.0f%% of slo",
			sig.OverheadShare()*100, time.Duration(tail), cfg.Headroom*100)
	default:
		st.CalmTicks++
		if st.CalmTicks >= calmReset {
			st.StepScale = 1
		}
		return hold("in band")
	}
	st.CalmTicks = 0

	if st.Cooldown > 0 {
		st2, d := hold(fmt.Sprintf("cooldown %d: %s", st.Cooldown, why))
		d.Overloaded = overloaded
		return st2, d
	}

	// Damping: a direction reversal halves the step, steady movement
	// recovers it. An oscillating disturbance therefore converges to
	// ever-smaller corrections instead of a limit cycle.
	if st.LastDir != 0 && want == -st.LastDir {
		st.StepScale /= 2
		if st.StepScale < stepScaleFloor {
			st.StepScale = stepScaleFloor
		}
	} else if want == st.LastDir {
		st.StepScale *= 1.5
		if st.StepScale > 1 {
			st.StepScale = 1
		}
	}

	var factor float64
	if want > 0 {
		factor = 1 + (cfg.GrowStep-1)*st.StepScale
	} else {
		factor = 1 - (1-cfg.ShrinkStep)*st.StepScale
	}
	next := int(float64(st.Phi) * factor)
	next -= next % phiQuantum
	// Guarantee progress even at the damping floor.
	if want > 0 && next <= st.Phi {
		next = st.Phi + phiQuantum
	}
	if want < 0 && next >= st.Phi {
		next = st.Phi - phiQuantum
	}

	clamped := false
	if c := clampPhi(next, cfg); c != next {
		next = c
		clamped = true
	}
	if next == st.Phi {
		// Already pinned to the bound the signals push toward.
		st.LastDir = want
		st.Cooldown = cfg.HoldTicks
		return st, Decision{Action: Hold, Phi: st.Phi, Clamped: true,
			Overloaded: overloaded,
			Reason:     fmt.Sprintf("at bound: %s", why)}
	}

	st.Phi = next
	st.LastDir = want
	st.Cooldown = cfg.HoldTicks
	act := Grow
	if want < 0 {
		act = Shrink
	}
	return st, Decision{Action: act, Phi: next, Clamped: clamped, Overloaded: overloaded, Reason: why}
}

func clampPhi(phi int, cfg Config) int {
	if phi < cfg.MinPhi {
		return cfg.MinPhi
	}
	if phi > cfg.MaxPhi {
		return cfg.MaxPhi
	}
	return phi
}
