package window

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		d  Def
		ok bool
	}{
		{NewCount(3, 1), true},
		{NewCount(3, 3), true},
		{NewTime(60, 1), true},
		{NewUnbounded(), true},
		{NewCount(0, 1), false},
		{NewCount(3, 0), false},
		{NewCount(2, 3), false},
		{NewTime(-1, 1), false},
	}
	for _, c := range cases {
		if err := c.d.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%v) = %v, want ok=%v", c.d, err, c.ok)
		}
	}
	if !NewCount(4, 4).Tumbling() || NewCount(4, 2).Tumbling() || NewUnbounded().Tumbling() {
		t.Error("Tumbling misclassification")
	}
}

func TestBoundaries(t *testing.T) {
	d := NewCount(7, 2)
	if d.Start(3) != 6 || d.End(3) != 13 {
		t.Errorf("window 3 = [%d,%d)", d.Start(3), d.End(3))
	}
}

// TestPaperFigure2Small replays Fig. 2's first example: 5-tuple batches with
// ω(3,1). Batch b1 has 3 complete windows and 2 opening fragments.
func TestPaperFigure2Small(t *testing.T) {
	d := NewCount(3, 1)
	got := d.Fragments(nil, 5, nil, Context{FirstIndex: 0, PrevTimestamp: NoPrev})
	want := []Fragment{
		{Window: 0, Start: 0, End: 3, Opens: true, Closes: true},
		{Window: 1, Start: 1, End: 4, Opens: true, Closes: true},
		{Window: 2, Start: 2, End: 5, Opens: true, Closes: true},
		{Window: 3, Start: 3, End: 5, Opens: true},
		{Window: 4, Start: 4, End: 5, Opens: true},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("b1 fragments = %+v", got)
	}
	// Batch b2 continues at index 5: windows 3,4 close there.
	got = d.Fragments(nil, 5, nil, Context{FirstIndex: 5, PrevTimestamp: 4})
	if got[0].Window != 3 || got[0].Opens || !got[0].Closes || got[0].Start != 0 || got[0].End != 1 {
		t.Errorf("w3 continuation = %+v", got[0])
	}
	if got[1].Window != 4 || got[1].Opens || !got[1].Closes || got[1].End != 2 {
		t.Errorf("w4 continuation = %+v", got[1])
	}
}

// TestPaperFigure2Large replays Fig. 2's second example: ω(7,2) over
// 5-tuple batches — the first batch contains only opening fragments.
func TestPaperFigure2Large(t *testing.T) {
	d := NewCount(7, 2)
	got := d.Fragments(nil, 5, nil, Context{FirstIndex: 0, PrevTimestamp: NoPrev})
	if len(got) != 3 {
		t.Fatalf("fragments = %+v", got)
	}
	for i, f := range got {
		if f.Window != int64(i) || !f.Opens || f.Closes {
			t.Errorf("fragment %d = %+v, want opening only", i, f)
		}
		if f.State() != Opening {
			t.Errorf("fragment %d state = %v", i, f.State())
		}
	}
}

func TestFragmentStates(t *testing.T) {
	cases := []struct {
		f    Fragment
		want State
	}{
		{Fragment{Opens: true, Closes: true}, Complete},
		{Fragment{Opens: true}, Opening},
		{Fragment{Closes: true}, Closing},
		{Fragment{}, Pending},
	}
	for _, c := range cases {
		if got := c.f.State(); got != c.want {
			t.Errorf("State(%+v) = %v, want %v", c.f, got, c.want)
		}
	}
	for _, s := range []State{Pending, Opening, Closing, Complete} {
		if s.String() == "" {
			t.Error("State.String empty")
		}
	}
}

// TestCountPendingState checks that a window spanning three batches is
// pending in the middle one.
func TestCountPendingState(t *testing.T) {
	d := NewCount(10, 10)
	// Window 0 covers indices [0,10); batches of 4, 3, 3 tuples.
	b1 := d.Fragments(nil, 4, nil, Context{FirstIndex: 0, PrevTimestamp: NoPrev})
	b2 := d.Fragments(nil, 3, nil, Context{FirstIndex: 4})
	b3 := d.Fragments(nil, 3, nil, Context{FirstIndex: 7})
	if b1[0].State() != Opening {
		t.Errorf("b1 = %+v", b1[0])
	}
	if len(b2) != 1 || b2[0].State() != Pending {
		t.Errorf("b2 = %+v", b2)
	}
	if b3[0].State() != Closing || b3[0].End != 3 {
		t.Errorf("b3 = %+v", b3)
	}
}

func TestTimeFragmentsBasic(t *testing.T) {
	d := NewTime(10, 5)
	ts := Int64Timestamps{0, 3, 7, 12, 14}
	got := d.Fragments(nil, len(ts), ts, Context{PrevTimestamp: NoPrev})
	// Windows: k=0 [0,10) -> tuples 0,3,7; closes (last=14>=10).
	// k=1 [5,15) -> tuples 7,12,14; open. k=2 [10,20) -> 12,14; open.
	want := []Fragment{
		{Window: 0, Start: 0, End: 3, Opens: true, Closes: true},
		{Window: 1, Start: 2, End: 5, Opens: true},
		{Window: 2, Start: 3, End: 5, Opens: true},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fragments = %+v", got)
	}
}

func TestTimeFragmentsAcrossBatches(t *testing.T) {
	d := NewTime(10, 5)
	// Continue the stream above: next batch ts 16..22.
	ts := Int64Timestamps{16, 20, 22}
	got := d.Fragments(nil, len(ts), ts, Context{PrevTimestamp: 14})
	// k=1 [5,15): closes here with no tuples. k=2 [10,20): tuple 16, closes.
	// k=3 [15,25): 16,20,22, opens here (start 15 > 14). k=4 [20,30): opens.
	want := []Fragment{
		{Window: 1, Start: 0, End: 0, Closes: true},
		{Window: 2, Start: 0, End: 1, Closes: true},
		{Window: 3, Start: 0, End: 3, Opens: true},
		{Window: 4, Start: 1, End: 3, Opens: true},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fragments = %+v", got)
	}
}

func TestTimeFirstBatchSkipsAncientWindows(t *testing.T) {
	d := NewTime(10, 1)
	// Stream starts at t=1000: windows ending before 1000 must not appear.
	ts := Int64Timestamps{1000, 1001}
	got := d.Fragments(nil, len(ts), ts, Context{PrevTimestamp: NoPrev})
	if len(got) == 0 {
		t.Fatal("no fragments")
	}
	if got[0].Window != 991 { // first window with end > 1000: k*1+10 > 1000
		t.Errorf("first window = %d, want 991", got[0].Window)
	}
	for _, f := range got {
		if !f.Opens {
			t.Errorf("first-batch fragment %+v not opening", f)
		}
	}
}

func TestUnbounded(t *testing.T) {
	d := NewUnbounded()
	got := d.Fragments(nil, 7, nil, Context{FirstIndex: 0, PrevTimestamp: NoPrev})
	if len(got) != 1 || got[0].Tuples() != 7 || !got[0].Opens || got[0].Closes {
		t.Fatalf("fragments = %+v", got)
	}
	got = d.Fragments(nil, 3, nil, Context{FirstIndex: 7, PrevTimestamp: 99})
	if len(got) != 1 || got[0].Opens {
		t.Fatalf("continuation fragments = %+v", got)
	}
	if got := d.Fragments(nil, 0, nil, Context{}); len(got) != 0 {
		t.Fatalf("empty batch fragments = %+v", got)
	}
}

func TestEmptyBatch(t *testing.T) {
	for _, d := range []Def{NewCount(3, 1), NewTime(3, 1)} {
		if got := d.Fragments(nil, 0, nil, Context{}); len(got) != 0 {
			t.Errorf("%v empty batch = %+v", d, got)
		}
	}
}

// reconstruct runs Fragments over a batching of the stream and
// concatenates each window's fragment tuple ranges.
func reconstruct(d Def, ts []int64, batchSizes []int) (content map[int64][]int64, opens, closes map[int64]int) {
	content = map[int64][]int64{}
	opens, closes = map[int64]int{}, map[int64]int{}
	idx := 0
	prev := NoPrev
	for _, n := range batchSizes {
		if idx >= len(ts) {
			break
		}
		if idx+n > len(ts) {
			n = len(ts) - idx
		}
		batch := ts[idx : idx+n]
		frags := d.Fragments(nil, n, Int64Timestamps(batch), Context{FirstIndex: int64(idx), PrevTimestamp: prev})
		for _, f := range frags {
			content[f.Window] = append(content[f.Window], batch[f.Start:f.End]...)
			if f.Opens {
				opens[f.Window]++
			}
			if f.Closes {
				closes[f.Window]++
			}
		}
		prev = batch[n-1]
		idx += n
	}
	return content, opens, closes
}

// directWindows computes window contents without batching, as ground truth.
func directWindows(d Def, ts []int64) map[int64][]int64 {
	out := map[int64][]int64{}
	switch d.Kind {
	case Count:
		for k := int64(0); d.Start(k) < int64(len(ts)); k++ {
			for i := d.Start(k); i < d.End(k) && i < int64(len(ts)); i++ {
				out[k] = append(out[k], ts[i])
			}
		}
	case Time:
		if len(ts) == 0 {
			return out
		}
		first, last := ts[0], ts[len(ts)-1]
		for k := int64(0); d.Start(k) <= last; k++ {
			if d.End(k) <= first {
				// Predates the stream; the assigner skips it too.
				continue
			}
			if _, seen := out[k]; !seen {
				out[k] = []int64{}
			}
			for _, v := range ts {
				if v >= d.Start(k) && v < d.End(k) {
					out[k] = append(out[k], v)
				}
			}
		}
	}
	return out
}

// TestFragmentConcatenationProperty is the DESIGN.md invariant: for any
// batching, concatenating a window's fragments reproduces the window, and
// every window that closes opens exactly once and closes exactly once.
func TestFragmentConcatenationProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	f := func(sizeSeed, slideSeed, kindSeed uint8, nTuples uint8) bool {
		size := int64(sizeSeed%20) + 1
		slide := int64(slideSeed)%size + 1
		n := int(nTuples%120) + 1
		d := NewCount(size, slide)
		ts := make([]int64, n)
		cur := int64(rnd.Intn(5))
		for i := range ts {
			ts[i] = cur
			cur += int64(rnd.Intn(3)) // non-decreasing, with duplicates
		}
		if kindSeed%2 == 1 {
			d = NewTime(size, slide)
		}
		var batches []int
		for left := n; left > 0; {
			b := rnd.Intn(9) + 1
			if b > left {
				b = left
			}
			batches = append(batches, b)
			left -= b
		}
		content, opens, closes := reconstruct(d, ts, batches)
		truth := directWindows(d, ts)
		for k, want := range truth {
			got := content[k]
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		for k, c := range opens {
			if c != 1 {
				t.Logf("window %d opened %d times (def %v)", k, c, d)
				return false
			}
		}
		for k, c := range closes {
			if c != 1 {
				t.Logf("window %d closed %d times (def %v)", k, c, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {-4, 2, -2}, {0, 3, 0}, {-1, 5, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDefString(t *testing.T) {
	if NewUnbounded().String() != "ω∞" {
		t.Error("unbounded String")
	}
	if s := NewCount(3, 1).String(); s != "ω(rows 3 slide 1)" {
		t.Errorf("String = %q", s)
	}
	if s := NewTime(60, 5).String(); s != "ω(range 60 slide 5)" {
		t.Errorf("String = %q", s)
	}
}
