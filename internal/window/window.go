// Package window implements SABER's window model (paper §2.4, §3): count-
// and time-based sliding windows, and the decomposition of windows into
// per-batch window fragments.
//
// The central invariant of the hybrid processing model is that stream
// batches are sized independently of window definitions. A batch therefore
// contains arbitrary window *fragments*; this package computes, for one
// batch, the set of windows that intersect it, the tuple range each window
// covers inside the batch, and whether the window opens and/or closes
// within the batch. The computation is deliberately pure and cheap to call
// from the parallel task-execution stage, which is how SABER postpones
// window-boundary computation out of the sequential dispatcher (§4.1).
package window

import (
	"fmt"
	"math"
)

// Kind distinguishes count-based (row) and time-based (range) windows, plus
// the degenerate unbounded window used by queries like LRB1.
type Kind uint8

const (
	// Count windows contain a fixed number of tuples.
	Count Kind = iota
	// Time windows contain the tuples of a fixed span of logical time.
	Time
	// Unbounded is a single window covering the whole stream; operators
	// over it behave as per-tuple streaming transforms.
	Unbounded
)

// String names the kind as in CQL ("rows"/"range"/"unbounded").
func (k Kind) String() string {
	switch k {
	case Count:
		return "rows"
	case Time:
		return "range"
	default:
		return "unbounded"
	}
}

// Def is a window definition ω(size, slide).
type Def struct {
	Kind  Kind
	Size  int64 // tuples (Count) or time units (Time)
	Slide int64
}

// NewCount returns a count-based window definition.
func NewCount(size, slide int64) Def { return Def{Kind: Count, Size: size, Slide: slide} }

// NewTime returns a time-based window definition.
func NewTime(size, slide int64) Def { return Def{Kind: Time, Size: size, Slide: slide} }

// NewUnbounded returns the unbounded window definition.
func NewUnbounded() Def { return Def{Kind: Unbounded} }

// Validate reports whether the definition is well-formed.
func (d Def) Validate() error {
	if d.Kind == Unbounded {
		return nil
	}
	if d.Size <= 0 || d.Slide <= 0 {
		return fmt.Errorf("window: size %d and slide %d must be positive", d.Size, d.Slide)
	}
	if d.Slide > d.Size {
		return fmt.Errorf("window: slide %d larger than size %d (sampling windows unsupported)", d.Slide, d.Size)
	}
	return nil
}

// Tumbling reports whether the window is tumbling (slide == size).
func (d Def) Tumbling() bool { return d.Kind != Unbounded && d.Slide == d.Size }

// Start returns the start boundary (tuple index or timestamp) of window k.
func (d Def) Start(k int64) int64 { return k * d.Slide }

// End returns the exclusive end boundary of window k.
func (d Def) End(k int64) int64 { return k*d.Slide + d.Size }

// String renders the definition like the paper's ω(s,l) notation.
func (d Def) String() string {
	if d.Kind == Unbounded {
		return "ω∞"
	}
	return fmt.Sprintf("ω(%s %d slide %d)", d.Kind, d.Size, d.Slide)
}

// Fragment is the part of one window that falls inside one stream batch.
type Fragment struct {
	// Window is the window index k; window k spans
	// [k*Slide, k*Slide+Size) in tuple indices (Count) or time (Time).
	Window int64
	// Start and End delimit the tuples of this fragment as indices into
	// the batch, [Start, End). The range may be empty for a time window
	// that closes in a batch containing none of its tuples.
	Start, End int
	// Opens reports that no earlier batch contributed to this window.
	Opens bool
	// Closes reports that no later batch will contribute to this window.
	Closes bool
}

// State classifies a fragment the way the result stage buckets them
// (paper §5.3): a window that opens and closes in the same batch is
// complete; one that only opens here is opening; only closes here is
// closing; neither is pending.
type State uint8

// Fragment states, see State.
const (
	Pending State = iota
	Opening
	Closing
	Complete
)

// String names the state.
func (s State) String() string {
	switch s {
	case Opening:
		return "opening"
	case Closing:
		return "closing"
	case Complete:
		return "complete"
	default:
		return "pending"
	}
}

// State returns the fragment's classification.
func (f Fragment) State() State {
	switch {
	case f.Opens && f.Closes:
		return Complete
	case f.Opens:
		return Opening
	case f.Closes:
		return Closing
	default:
		return Pending
	}
}

// Tuples returns the number of tuples in the fragment.
func (f Fragment) Tuples() int { return f.End - f.Start }

// NoPrev is the Context.PrevTimestamp sentinel for the first batch of a
// stream. Logical timestamps are non-negative, so any real timestamp
// exceeds it.
const NoPrev = int64(math.MinInt64)

// Context carries the per-batch stream position needed to compute
// fragments. The dispatcher captures it in O(1) when it cuts a batch; the
// expensive per-tuple work happens later, inside the task.
type Context struct {
	// FirstIndex is the absolute stream index of the batch's first tuple.
	FirstIndex int64
	// PrevTimestamp is the timestamp of the last tuple of the previous
	// batch, or NoPrev for the first batch of the stream.
	PrevTimestamp int64
}

// Timestamps exposes the (ordered) tuple timestamps of a batch to the
// fragment computation without forcing a materialised []int64.
type Timestamps interface {
	// Len returns the number of tuples in the batch.
	Len() int
	// At returns the timestamp of tuple i.
	At(i int) int64
}

// Int64Timestamps adapts a []int64 to the Timestamps interface.
type Int64Timestamps []int64

// Len implements Timestamps.
func (t Int64Timestamps) Len() int { return len(t) }

// At implements Timestamps.
func (t Int64Timestamps) At(i int) int64 { return t[i] }

// Fragments computes the window fragments of one batch, appending to dst
// (which may be nil) and returning it. Fragments are produced in window
// order. For Count windows ts may be nil; for Time windows it must hold
// the batch's tuple timestamps in non-decreasing order.
func (d Def) Fragments(dst []Fragment, n int, ts Timestamps, ctx Context) []Fragment {
	switch d.Kind {
	case Unbounded:
		if n == 0 {
			return dst
		}
		opens := ctx.FirstIndex == 0 && ctx.PrevTimestamp == NoPrev
		return append(dst, Fragment{Window: 0, Start: 0, End: n, Opens: opens})
	case Count:
		return d.countFragments(dst, n, ctx)
	case Time:
		return d.timeFragments(dst, n, ts, ctx)
	}
	return dst
}

func (d Def) countFragments(dst []Fragment, n int, ctx Context) []Fragment {
	if n == 0 {
		return dst
	}
	b := ctx.FirstIndex // first absolute tuple index in batch
	e := b + int64(n)   // one past last
	s, l := d.Size, d.Slide

	// Windows intersecting [b, e): end > b and start < e.
	kMin := int64(0)
	if b >= s {
		// smallest k with k*l+s > b  <=>  k > (b-s)/l
		kMin = floorDiv(b-s, l) + 1
	}
	kMax := floorDiv(e-1, l)
	for k := kMin; k <= kMax; k++ {
		ws, we := d.Start(k), d.End(k)
		f := Fragment{
			Window: k,
			Start:  int(max64(ws, b) - b),
			End:    int(min64(we, e) - b),
			Opens:  ws >= b,
			Closes: we <= e,
		}
		dst = append(dst, f)
	}
	return dst
}

func (d Def) timeFragments(dst []Fragment, n int, ts Timestamps, ctx Context) []Fragment {
	if n == 0 {
		return dst
	}
	s, l := d.Size, d.Slide
	first := ts.At(0)
	last := ts.At(n - 1)

	// A window is relevant if it has not fully closed before this batch
	// (end > PrevTimestamp) and it has started by the batch's last tuple
	// (start <= last). For the first batch, windows that ended before the
	// first tuple never held data and are skipped entirely.
	horizon := ctx.PrevTimestamp
	if horizon == NoPrev {
		// Windows with end <= first (end is exclusive) can never hold a
		// tuple of this stream; skip them.
		horizon = first
	}
	// smallest k with k*l+s > horizon  <=>  k > (horizon-s)/l
	kMin := floorDiv(horizon-s, l) + 1
	if kMin < 0 {
		kMin = 0
	}
	kMax := floorDiv(last, l)
	if kMax < kMin-1 {
		kMax = kMin - 1
	}

	// Two-pointer sweep: window boundaries are monotonically increasing
	// in k, and timestamps are ordered, so each pointer only advances.
	lo, hi := 0, 0
	for k := kMin; k <= kMax; k++ {
		ws, we := d.Start(k), d.End(k)
		for lo < n && ts.At(lo) < ws {
			lo++
		}
		if hi < lo {
			hi = lo
		}
		for hi < n && ts.At(hi) < we {
			hi++
		}
		dst = append(dst, Fragment{
			Window: k,
			Start:  lo,
			End:    hi,
			Opens:  ctx.PrevTimestamp == NoPrev || ws > ctx.PrevTimestamp,
			Closes: last >= we,
		})
	}
	return dst
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
