package exec

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func key32(v int32) []byte {
	k := make([]byte, 4)
	binary.LittleEndian.PutUint32(k, uint32(v))
	return k
}

func TestHashTableUpsertLookup(t *testing.T) {
	h := NewHashTable(4, 2, 8)
	if h.Len() != 0 || h.KeyLen() != 4 || h.NumAggs() != 2 {
		t.Fatalf("fresh table: %+v", h)
	}
	sl := h.Upsert(key32(7), nil)
	sl.AddCount(1)
	sl.AddVal(0, 2.5)
	sl.SetVal(1, -1)
	sl.ObserveTS(10)

	got, ok := h.Lookup(key32(7))
	if !ok || got.Count() != 1 || got.Val(0) != 2.5 || got.Val(1) != -1 || got.MaxTS() != 10 {
		t.Fatalf("lookup = %v %v", got, ok)
	}
	if _, ok := h.Lookup(key32(8)); ok {
		t.Fatal("phantom key")
	}
	// Upsert of an existing key returns the same slot.
	again := h.Upsert(key32(7), nil)
	again.AddCount(2)
	if got, _ := h.Lookup(key32(7)); got.Count() != 3 {
		t.Fatalf("count = %d", got.Count())
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestHashTableMinMaxHelpers(t *testing.T) {
	h := NewHashTable(4, 2, 4)
	sl := h.Upsert(key32(1), func(s Slot) {
		s.SetVal(0, math.Inf(1))
		s.SetVal(1, math.Inf(-1))
	})
	for _, v := range []float64{5, 2, 9} {
		sl.MinVal(0, v)
		sl.MaxVal(1, v)
	}
	if sl.Val(0) != 2 || sl.Val(1) != 9 {
		t.Fatalf("min/max = %g/%g", sl.Val(0), sl.Val(1))
	}
}

func TestHashTableGrow(t *testing.T) {
	h := NewHashTable(4, 1, 2)
	for i := int32(0); i < 200; i++ {
		sl := h.Upsert(key32(i), nil)
		sl.AddCount(int64(i))
		sl.AddVal(0, float64(i)*0.5)
	}
	if h.Len() != 200 {
		t.Fatalf("Len = %d", h.Len())
	}
	for i := int32(0); i < 200; i++ {
		sl, ok := h.Lookup(key32(i))
		if !ok || sl.Count() != int64(i) || sl.Val(0) != float64(i)*0.5 {
			t.Fatalf("key %d lost after grow: %v %v", i, sl, ok)
		}
	}
}

func TestHashTableReset(t *testing.T) {
	h := NewHashTable(4, 1, 4)
	h.Upsert(key32(1), nil)
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	if _, ok := h.Lookup(key32(1)); ok {
		t.Fatal("key survived Reset")
	}
	h.Reset() // idempotent on empty
}

func TestHashTableRange(t *testing.T) {
	h := NewHashTable(4, 1, 8)
	want := map[int32]bool{3: true, 5: true, 11: true}
	for k := range want {
		h.Upsert(key32(k), nil)
	}
	seen := map[int32]bool{}
	h.Range(func(s Slot) {
		seen[int32(binary.LittleEndian.Uint32(s.Key()))] = true
	})
	if len(seen) != len(want) {
		t.Fatalf("Range visited %v", seen)
	}
}

func TestHashTableMergeFrom(t *testing.T) {
	ops := []MergeOp{OpAdd, OpMin, OpMax}
	a := NewHashTable(4, 3, 4)
	b := NewHashTable(4, 3, 4)
	seed := func(s Slot) { s.SetVal(1, math.Inf(1)); s.SetVal(2, math.Inf(-1)) }

	sa := a.Upsert(key32(1), seed)
	sa.AddCount(2)
	sa.AddVal(0, 10)
	sa.MinVal(1, 5)
	sa.MaxVal(2, 5)
	sa.ObserveTS(100)

	sb := b.Upsert(key32(1), seed)
	sb.AddCount(3)
	sb.AddVal(0, 7)
	sb.MinVal(1, 2)
	sb.MaxVal(2, 9)
	sb.ObserveTS(50)

	sb2 := b.Upsert(key32(2), seed)
	sb2.AddCount(1)
	sb2.AddVal(0, 1)
	sb2.MinVal(1, 1)
	sb2.MaxVal(2, 1)

	a.MergeFrom(b, ops)
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	s1, _ := a.Lookup(key32(1))
	if s1.Count() != 5 || s1.Val(0) != 17 || s1.Val(1) != 2 || s1.Val(2) != 9 || s1.MaxTS() != 100 {
		t.Fatalf("merged slot = count %d vals %g/%g/%g ts %d",
			s1.Count(), s1.Val(0), s1.Val(1), s1.Val(2), s1.MaxTS())
	}
	s2, _ := a.Lookup(key32(2))
	if s2.Count() != 1 || s2.Val(1) != 1 || s2.Val(2) != 1 {
		t.Fatalf("new group slot = %+v", s2)
	}
	a.MergeFrom(nil, ops) // no-op
}

func TestHashTableKeyLenMismatchPanics(t *testing.T) {
	h := NewHashTable(4, 1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on key length mismatch")
		}
	}()
	h.Upsert([]byte{1, 2}, nil)
}

// TestHashTableQuickVsMap compares against a plain Go map under random
// workloads (the testing/quick property for the table).
func TestHashTableQuickVsMap(t *testing.T) {
	f := func(keys []int32, vals []float64) bool {
		h := NewHashTable(4, 1, 4)
		ref := map[int32]struct {
			c int64
			v float64
		}{}
		for i, k := range keys {
			v := 1.0
			if i < len(vals) {
				v = vals[i]
			}
			sl := h.Upsert(key32(k), nil)
			sl.AddCount(1)
			sl.AddVal(0, v)
			r := ref[k]
			r.c++
			r.v += v
			ref[k] = r
		}
		if h.Len() != len(ref) {
			return false
		}
		for k, r := range ref {
			sl, ok := h.Lookup(key32(k))
			if !ok || sl.Count() != r.c || sl.Val(0) != r.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHashIsFNV1a(t *testing.T) {
	// Lock the hash function: the GPGPU kernels rely on identical
	// placement. FNV-1a of "a" is 0xaf63dc4c8601ec8c.
	if got := Hash([]byte("a")); got != 0xaf63dc4c8601ec8c {
		t.Fatalf("Hash = %#x", got)
	}
	if Hash(nil) != 14695981039346656037 {
		t.Fatal("Hash(nil) != offset basis")
	}
}
