package exec

import "saber/internal/window"

// processUDF runs a user-defined operator function's batch stage: the
// batch's window fragments are computed exactly as for relational
// operators, and the UDF's fragment function produces each fragment's
// opaque partial.
func (p *Plan) processUDF(in [2]Batch, res *TaskResult) {
	if p.NumInputs() == 2 {
		for _, pr := range p.JoinPairs(in) {
			res.Partials = append(res.Partials, p.UDFPartialPair(pr, in))
		}
		return
	}
	for _, f := range p.udfFragments(in[0]) {
		res.Partials = append(res.Partials, p.UDFPartialSingle(in[0], f))
	}
}

// UDFPartialPair computes one window's partial for a two-input UDF task
// (exported for the GPGPU kernel, which parallelises across windows).
func (p *Plan) UDFPartialPair(pr JoinPair, in [2]Batch) WindowPartial {
	udf := p.Q.UDF
	sa, sb := p.in[0], p.in[1]
	part := WindowPartial{
		Window:     pr.Window,
		OpenedHere: pr.Opened,
		ClosedHere: pr.ClosedA && pr.ClosedB,
		MaxTS:      minInt64,
	}
	part.ClosedSides[0] = pr.ClosedA
	part.ClosedSides[1] = pr.ClosedB
	var aData, bData []byte
	if pr.HaveA {
		aData = in[0].Data[pr.FA.Start*sa.TupleSize() : pr.FA.End*sa.TupleSize()]
		if pr.FA.End > pr.FA.Start {
			part.MaxTS = p.TimestampOf(0, in[0].Data, pr.FA.End-1)
		}
	}
	if pr.HaveB {
		bData = in[1].Data[pr.FB.Start*sb.TupleSize() : pr.FB.End*sb.TupleSize()]
		if pr.FB.End > pr.FB.Start {
			if ts := p.TimestampOf(1, in[1].Data, pr.FB.End-1); ts > part.MaxTS {
				part.MaxTS = ts
			}
		}
	}
	part.Data = udf.ProcessFragment([][]byte{aData, bData})
	return part
}

// UDFPartialSingle computes one window fragment's partial for a
// single-input UDF task.
func (p *Plan) UDFPartialSingle(in Batch, f window.Fragment) WindowPartial {
	tsz := p.in[0].TupleSize()
	view := newTSView(p.in[0], in.Data)
	part := WindowPartial{
		Window:     f.Window,
		OpenedHere: f.Opens,
		ClosedHere: f.Closes,
		MaxTS:      fragLastTS(view, f.Start, f.End),
	}
	part.Data = p.Q.UDF.ProcessFragment([][]byte{in.Data[f.Start*tsz : f.End*tsz]})
	return part
}

// mergeUDF folds the next partial into the accumulated one.
func (p *Plan) mergeUDF(acc, next *WindowPartial) {
	acc.Data = p.Q.UDF.Merge(acc.Data, next.Data)
	next.Data = nil
}

// finalizeUDF renders a closed window.
func (p *Plan) finalizeUDF(part *WindowPartial, dst []byte) []byte {
	return append(dst, p.Q.UDF.Finalize(part.Data)...)
}

// udfFragments is a small helper for the GPGPU kernel: the per-window
// work items of a single-input UDF task.
func (p *Plan) udfFragments(in Batch) []window.Fragment {
	view := newTSView(p.in[0], in.Data)
	return p.windows[0].Fragments(nil, view.Len(), view, in.Ctx)
}
