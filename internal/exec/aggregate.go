package exec

import (
	"math"
	"sort"

	"saber/internal/query"
	"saber/internal/window"
)

// processAggregate runs the windowed-aggregation batch operator function:
// it computes the batch's window fragments and produces one WindowPartial
// per fragment. Sliding windows use incremental computation (paper §5.3):
// for invertible functions (count/sum/avg) the scalar path takes O(1) per
// fragment off prefix sums, and the grouped path maintains a rolling group
// table that is updated with the tuples entering and leaving consecutive
// fragments instead of being rebuilt.
//
// The vectorized variants batch-evaluate the filter into a selection
// vector and every aggregate argument into a value column once per batch,
// ahead of the fragment loops; the per-tuple scalar variants remain the
// reference implementation (SetVectorized(false)).
func (p *Plan) processAggregate(in Batch, res *TaskResult) {
	s := p.in[0]
	tsz := s.TupleSize()
	n := len(in.Data) / tsz
	sc := p.getScratch()
	defer p.putScratch(sc)

	view := newTSView(s, in.Data)
	sc.frags = p.windows[0].Fragments(sc.frags[:0], n, view, in.Ctx)
	if len(sc.frags) == 0 {
		return
	}

	switch {
	case p.grouped && p.invertApl:
		if p.vec {
			p.aggGroupedRollingVec(in, sc, view, res)
		} else {
			p.aggGroupedRolling(in, sc, view, res)
		}
	case p.grouped:
		if p.vec {
			p.aggGroupedDirectVec(in, sc, view, res)
		} else {
			p.aggGroupedDirect(in, sc, view, res)
		}
	case p.invertApl:
		if p.vec {
			p.aggScalarPrefixVec(in, sc, view, res)
		} else {
			p.aggScalarPrefix(in, sc, view, res)
		}
	default:
		if p.vec {
			p.aggScalarDirectVec(in, sc, view, res)
		} else {
			p.aggScalarDirect(in, sc, view, res)
		}
	}
}

func (p *Plan) tupleAt(in Batch, i int) []byte {
	tsz := p.in[0].TupleSize()
	return in.Data[i*tsz : (i+1)*tsz]
}

func fragLastTS(view tsView, start, end int) int64 {
	if end > start {
		return view.At(end - 1)
	}
	return minInt64
}

// evalAggBatch is the vectorized pre-pass: it fills the scratch selection
// vector from the filter (nil/all=true when there is no filter) and
// evaluates every aggregate argument into its value column, once per
// batch. Argless aggregates (count) get no column.
func (p *Plan) evalAggBatch(sc *scratch, b Batch, tsz, n int) (sel []int32, all bool) {
	in := p.batchInput(b, tsz, n)
	m := len(p.aggs)
	sc.cols = growF64(sc.cols, m*n)
	for a, spec := range p.aggs {
		col := sc.cols[a*n : (a+1)*n : (a+1)*n]
		if spec.arg == nil {
			// Argless (count): a zero column, so the fused fold loops can
			// treat every aggregate uniformly.
			for i := range col {
				col[i] = 0
			}
			continue
		}
		spec.arg.EvalBatchFloat(&sc.vec, col, in)
	}
	if p.filter == nil {
		return nil, true
	}
	sc.sel = p.filter.EvalBatch(&sc.vec, sc.sel, in)
	return sc.sel, false
}

// lowerBound returns the first index in sel whose value is >= v.
func lowerBound(sel []int32, v int32) int {
	return sort.Search(len(sel), func(i int) bool { return sel[i] >= v })
}

// aggScalarPrefix computes non-grouped invertible aggregates with prefix
// sums: each fragment's partial is a difference of two prefix entries.
func (p *Plan) aggScalarPrefix(in Batch, sc *scratch, view tsView, res *TaskResult) {
	n := view.Len()
	m := len(p.aggs)
	prefC := growI64(sc.prefixC, n+1)
	prefV := growF64(sc.prefixV, (n+1)*m)
	sc.prefixC, sc.prefixV = prefC, prefV
	prefC[0] = 0
	for a := 0; a < m; a++ {
		prefV[a] = 0
	}
	for i := 0; i < n; i++ {
		tuple := p.tupleAt(in, i)
		pass := p.filter == nil || p.filter.EvalTuple(tuple)
		d := int64(0)
		if pass {
			d = 1
		}
		prefC[i+1] = prefC[i] + d
		for a, spec := range p.aggs {
			v := 0.0
			if pass && spec.arg != nil {
				v = spec.arg.EvalFloat(tuple, nil)
			}
			prefV[(i+1)*m+a] = prefV[i*m+a] + v
		}
	}
	p.emitPrefixFrags(sc, view, prefC, prefV, m, res)
}

// aggScalarPrefixVec builds the same prefix arrays from the batch-
// evaluated selection vector and value columns, then shares the fragment
// emission with the scalar path.
func (p *Plan) aggScalarPrefixVec(in Batch, sc *scratch, view tsView, res *TaskResult) {
	n := view.Len()
	m := len(p.aggs)
	sel, all := p.evalAggBatch(sc, in, p.in[0].TupleSize(), n)
	prefC := growI64(sc.prefixC, n+1)
	prefV := growF64(sc.prefixV, (n+1)*m)
	sc.prefixC, sc.prefixV = prefC, prefV
	prefC[0] = 0
	for a := 0; a < m; a++ {
		prefV[a] = 0
	}
	// One fused pass builds the count prefix and all value prefixes
	// together: the m running sums are independent dependency chains, so
	// interleaving them hides the FP add latency that per-agg passes would
	// serialise. Rejected rows add 0.0, exactly like the scalar loop, so
	// the running sums stay bit-identical. Queries with up to three
	// aggregates keep the running sums in registers.
	cols := sc.cols
	si := 0
	cnt := int64(0)
	switch m {
	case 1:
		c0 := cols[:n]
		v0 := 0.0
		for i := 0; i < n; i++ {
			if all || (si < len(sel) && sel[si] == int32(i)) {
				if !all {
					si++
				}
				cnt++
				v0 += c0[i]
			} else {
				v0 += 0.0
			}
			prefC[i+1] = cnt
			prefV[i+1] = v0
		}
	case 2:
		c0, c1 := cols[:n], cols[n:2*n]
		v0, v1 := 0.0, 0.0
		for i := 0; i < n; i++ {
			if all || (si < len(sel) && sel[si] == int32(i)) {
				if !all {
					si++
				}
				cnt++
				v0 += c0[i]
				v1 += c1[i]
			} else {
				v0 += 0.0
				v1 += 0.0
			}
			prefC[i+1] = cnt
			prefV[(i+1)*2] = v0
			prefV[(i+1)*2+1] = v1
		}
	case 3:
		c0, c1, c2 := cols[:n], cols[n:2*n], cols[2*n:3*n]
		v0, v1, v2 := 0.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			if all || (si < len(sel) && sel[si] == int32(i)) {
				if !all {
					si++
				}
				cnt++
				v0 += c0[i]
				v1 += c1[i]
				v2 += c2[i]
			} else {
				v0 += 0.0
				v1 += 0.0
				v2 += 0.0
			}
			prefC[i+1] = cnt
			prefV[(i+1)*3] = v0
			prefV[(i+1)*3+1] = v1
			prefV[(i+1)*3+2] = v2
		}
	default:
		for i := 0; i < n; i++ {
			pass := all
			if !pass && si < len(sel) && sel[si] == int32(i) {
				pass = true
				si++
			}
			base, nbase := i*m, (i+1)*m
			if pass {
				prefC[i+1] = prefC[i] + 1
				for a := 0; a < m; a++ {
					prefV[nbase+a] = prefV[base+a] + cols[a*n+i]
				}
			} else {
				prefC[i+1] = prefC[i]
				for a := 0; a < m; a++ {
					prefV[nbase+a] = prefV[base+a] + 0.0
				}
			}
		}
	}
	p.emitPrefixFrags(sc, view, prefC, prefV, m, res)
}

func (p *Plan) emitPrefixFrags(sc *scratch, view tsView, prefC []int64, prefV []float64, m int, res *TaskResult) {
	for _, f := range sc.frags {
		part := WindowPartial{
			Window:     f.Window,
			OpenedHere: f.Opens,
			ClosedHere: f.Closes,
			Count:      prefC[f.End] - prefC[f.Start],
			MaxTS:      fragLastTS(view, f.Start, f.End),
		}
		part.Vals = res.AllocVals(m)
		for a := 0; a < m; a++ {
			part.Vals[a] = prefV[f.End*m+a] - prefV[f.Start*m+a]
		}
		res.Partials = append(res.Partials, part)
	}
}

func (p *Plan) seedVals(vals []float64) {
	for a, spec := range p.aggs {
		switch spec.op {
		case OpMin:
			vals[a] = math.Inf(1)
		case OpMax:
			vals[a] = math.Inf(-1)
		}
	}
}

// aggScalarDirect recomputes each fragment by scanning its tuple range;
// used when a non-invertible function (min/max) is present. This is also
// the ablation path for BenchmarkAblationIncremental.
func (p *Plan) aggScalarDirect(in Batch, sc *scratch, view tsView, res *TaskResult) {
	m := len(p.aggs)
	for _, f := range sc.frags {
		part := WindowPartial{
			Window:     f.Window,
			OpenedHere: f.Opens,
			ClosedHere: f.Closes,
			MaxTS:      fragLastTS(view, f.Start, f.End),
			Vals:       res.AllocVals(m),
		}
		p.seedVals(part.Vals)
		for i := f.Start; i < f.End; i++ {
			tuple := p.tupleAt(in, i)
			if p.filter != nil && !p.filter.EvalTuple(tuple) {
				continue
			}
			part.Count++
			for a, spec := range p.aggs {
				if spec.arg == nil {
					continue
				}
				v := spec.arg.EvalFloat(tuple, nil)
				switch spec.op {
				case OpAdd:
					part.Vals[a] += v
				case OpMin:
					if v < part.Vals[a] {
						part.Vals[a] = v
					}
				case OpMax:
					if v > part.Vals[a] {
						part.Vals[a] = v
					}
				}
			}
		}
		res.Partials = append(res.Partials, part)
	}
}

// aggScalarDirectVec rescans each fragment off the pre-evaluated value
// columns: one tight fold per aggregate over the fragment's (selected)
// rows, in the same ascending order as the scalar path.
func (p *Plan) aggScalarDirectVec(in Batch, sc *scratch, view tsView, res *TaskResult) {
	n := view.Len()
	m := len(p.aggs)
	sel, all := p.evalAggBatch(sc, in, p.in[0].TupleSize(), n)
	for _, f := range sc.frags {
		part := WindowPartial{
			Window:     f.Window,
			OpenedHere: f.Opens,
			ClosedHere: f.Closes,
			MaxTS:      fragLastTS(view, f.Start, f.End),
			Vals:       res.AllocVals(m),
		}
		p.seedVals(part.Vals)
		lo, hi := f.Start, f.End
		var selLo, selHi int
		if all {
			part.Count = int64(hi - lo)
		} else {
			selLo = lowerBound(sel, int32(lo))
			selHi = selLo + lowerBound(sel[selLo:], int32(hi))
			part.Count = int64(selHi - selLo)
		}
		for a, spec := range p.aggs {
			if spec.arg == nil {
				continue
			}
			col := sc.cols[a*n : (a+1)*n]
			acc := part.Vals[a]
			switch spec.op {
			case OpAdd:
				if all {
					for i := lo; i < hi; i++ {
						acc += col[i]
					}
				} else {
					for k := selLo; k < selHi; k++ {
						acc += col[sel[k]]
					}
				}
			case OpMin:
				if all {
					for i := lo; i < hi; i++ {
						if col[i] < acc {
							acc = col[i]
						}
					}
				} else {
					for k := selLo; k < selHi; k++ {
						if v := col[sel[k]]; v < acc {
							acc = v
						}
					}
				}
			case OpMax:
				if all {
					for i := lo; i < hi; i++ {
						if col[i] > acc {
							acc = col[i]
						}
					}
				} else {
					for k := selLo; k < selHi; k++ {
						if v := col[sel[k]]; v > acc {
							acc = v
						}
					}
				}
			}
			part.Vals[a] = acc
		}
		res.Partials = append(res.Partials, part)
	}
}

// key extracts the group key of a tuple into dst.
func (p *Plan) key(dst, tuple []byte) []byte {
	s := p.in[0]
	dst = dst[:0]
	for _, fi := range p.groupIdx {
		off := s.Offset(fi)
		sz := s.Field(fi).Type.Size()
		dst = append(dst, tuple[off:off+sz]...)
	}
	return dst
}

func (p *Plan) seedSlot(sl Slot) {
	for a, op := range p.ops {
		switch op {
		case OpMin:
			sl.SetVal(a, math.Inf(1))
		case OpMax:
			sl.SetVal(a, math.Inf(-1))
		}
	}
}

// addTupleToSlot folds one tuple into a group slot with weight +1/-1.
func (p *Plan) addTupleToSlot(sl Slot, tuple []byte, sign float64) {
	sl.AddCount(int64(sign))
	for a, spec := range p.aggs {
		if spec.arg == nil {
			continue
		}
		v := spec.arg.EvalFloat(tuple, nil)
		switch spec.op {
		case OpAdd:
			sl.AddVal(a, sign*v)
		case OpMin:
			sl.MinVal(a, v)
		case OpMax:
			sl.MaxVal(a, v)
		}
	}
}

// addColsToSlot folds row i into a group slot off the pre-evaluated
// value columns — same folds as addTupleToSlot, no expression calls.
func (p *Plan) addColsToSlot(sl Slot, cols []float64, n, i int, sign float64) {
	sl.AddCount(int64(sign))
	for a, spec := range p.aggs {
		if spec.arg == nil {
			continue
		}
		v := cols[a*n+i]
		switch spec.op {
		case OpAdd:
			sl.AddVal(a, sign*v)
		case OpMin:
			sl.MinVal(a, v)
		case OpMax:
			sl.MaxVal(a, v)
		}
	}
}

// aggGroupedRolling computes grouped fragments incrementally: the rolling
// table always holds the current fragment's groups; moving to the next
// fragment removes the tuples that leave the window and adds those that
// enter. Requires invertible aggregates.
func (p *Plan) aggGroupedRolling(in Batch, sc *scratch, view tsView, res *TaskResult) {
	if sc.rolling == nil || sc.rolling.KeyLen() != p.keyLen || sc.rolling.NumAggs() != len(p.aggs) {
		sc.rolling = NewHashTable(p.keyLen, len(p.aggs), 256)
	}
	roll := sc.rolling
	roll.Reset()
	keyBuf := sc.keyBuf
	curStart, curEnd := sc.frags[0].Start, sc.frags[0].Start

	for _, f := range sc.frags {
		// Remove tuples leaving the window.
		for i := curStart; i < f.Start; i++ {
			tuple := p.tupleAt(in, i)
			if p.filter != nil && !p.filter.EvalTuple(tuple) {
				continue
			}
			keyBuf = p.key(keyBuf, tuple)
			if sl, ok := roll.Lookup(keyBuf); ok {
				p.addTupleToSlot(sl, tuple, -1)
			}
		}
		curStart = f.Start
		if curEnd < curStart {
			curEnd = curStart
		}
		// Add tuples entering the window.
		for i := curEnd; i < f.End; i++ {
			tuple := p.tupleAt(in, i)
			if p.filter != nil && !p.filter.EvalTuple(tuple) {
				continue
			}
			keyBuf = p.key(keyBuf, tuple)
			sl := roll.Upsert(keyBuf, p.seedSlot)
			p.addTupleToSlot(sl, tuple, +1)
			sl.ObserveTS(view.At(i))
		}
		curEnd = f.End

		res.Partials = append(res.Partials, p.snapshotRolling(roll, f, view))
	}
	sc.keyBuf = keyBuf
}

// aggGroupedRollingVec is the rolling path over the batch-evaluated
// selection vector and value columns: the remove and add scans walk two
// monotonic cursors over the selection vector instead of re-evaluating
// the filter and arguments per tuple.
func (p *Plan) aggGroupedRollingVec(in Batch, sc *scratch, view tsView, res *TaskResult) {
	n := view.Len()
	sel, all := p.evalAggBatch(sc, in, p.in[0].TupleSize(), n)
	if all {
		sel = sc.identitySel(n)
	}
	if sc.rolling == nil || sc.rolling.KeyLen() != p.keyLen || sc.rolling.NumAggs() != len(p.aggs) {
		sc.rolling = NewHashTable(p.keyLen, len(p.aggs), 256)
	}
	roll := sc.rolling
	roll.Reset()
	keyBuf := sc.keyBuf
	curStart, curEnd := sc.frags[0].Start, sc.frags[0].Start
	remPos := lowerBound(sel, int32(curStart))
	addPos := remPos

	for _, f := range sc.frags {
		// Remove tuples leaving the window.
		for remPos < len(sel) && sel[remPos] < int32(f.Start) {
			i := int(sel[remPos])
			remPos++
			tuple := p.tupleAt(in, i)
			keyBuf = p.key(keyBuf, tuple)
			if sl, ok := roll.Lookup(keyBuf); ok {
				p.addColsToSlot(sl, sc.cols, n, i, -1)
			}
		}
		curStart = f.Start
		if curEnd < curStart {
			curEnd = curStart
			// The window jumped forward: rows in the gap are never added.
			for addPos < len(sel) && sel[addPos] < int32(curEnd) {
				addPos++
			}
		}
		// Add tuples entering the window.
		for addPos < len(sel) && sel[addPos] < int32(f.End) {
			i := int(sel[addPos])
			addPos++
			tuple := p.tupleAt(in, i)
			keyBuf = p.key(keyBuf, tuple)
			sl := roll.Upsert(keyBuf, p.seedSlot)
			p.addColsToSlot(sl, sc.cols, n, i, +1)
			sl.ObserveTS(view.At(i))
		}
		curEnd = f.End

		res.Partials = append(res.Partials, p.snapshotRolling(roll, f, view))
	}
	sc.keyBuf = keyBuf
}

// snapshotRolling copies the rolling table's live groups into a pooled
// per-fragment table. A group's max contributing timestamp stays correct
// under rolling removal because removals always drop the window's oldest
// tuples.
func (p *Plan) snapshotRolling(roll *HashTable, f window.Fragment, view tsView) WindowPartial {
	snap := p.newTable()
	roll.Range(func(sl Slot) {
		if sl.Count() <= 0 {
			return
		}
		d := snap.Upsert(sl.Key(), p.seedSlot)
		d.AddCount(sl.Count())
		d.ObserveTS(sl.MaxTS())
		for a := range p.ops {
			d.SetVal(a, sl.Val(a))
		}
	})
	return WindowPartial{
		Window:     f.Window,
		OpenedHere: f.Opens,
		ClosedHere: f.Closes,
		Table:      snap,
		MaxTS:      fragLastTS(view, f.Start, f.End),
	}
}

// aggGroupedDirect rebuilds each fragment's group table from scratch; used
// when a non-invertible function is present.
func (p *Plan) aggGroupedDirect(in Batch, sc *scratch, view tsView, res *TaskResult) {
	keyBuf := sc.keyBuf
	for _, f := range sc.frags {
		table := p.newTable()
		for i := f.Start; i < f.End; i++ {
			tuple := p.tupleAt(in, i)
			if p.filter != nil && !p.filter.EvalTuple(tuple) {
				continue
			}
			keyBuf = p.key(keyBuf, tuple)
			sl := table.Upsert(keyBuf, p.seedSlot)
			p.addTupleToSlot(sl, tuple, +1)
			sl.ObserveTS(view.At(i))
		}
		res.Partials = append(res.Partials, WindowPartial{
			Window:     f.Window,
			OpenedHere: f.Opens,
			ClosedHere: f.Closes,
			Table:      table,
			MaxTS:      fragLastTS(view, f.Start, f.End),
		})
	}
	sc.keyBuf = keyBuf
}

// aggGroupedDirectVec rebuilds each fragment's table off the selection
// vector and pre-evaluated value columns.
func (p *Plan) aggGroupedDirectVec(in Batch, sc *scratch, view tsView, res *TaskResult) {
	n := view.Len()
	sel, all := p.evalAggBatch(sc, in, p.in[0].TupleSize(), n)
	if all {
		sel = sc.identitySel(n)
	}
	keyBuf := sc.keyBuf
	for _, f := range sc.frags {
		table := p.newTable()
		for k := lowerBound(sel, int32(f.Start)); k < len(sel) && sel[k] < int32(f.End); k++ {
			i := int(sel[k])
			tuple := p.tupleAt(in, i)
			keyBuf = p.key(keyBuf, tuple)
			sl := table.Upsert(keyBuf, p.seedSlot)
			p.addColsToSlot(sl, sc.cols, n, i, +1)
			sl.ObserveTS(view.At(i))
		}
		res.Partials = append(res.Partials, WindowPartial{
			Window:     f.Window,
			OpenedHere: f.Opens,
			ClosedHere: f.Closes,
			Table:      table,
			MaxTS:      fragLastTS(view, f.Start, f.End),
		})
	}
	sc.keyBuf = keyBuf
}

// SetIncremental force-enables or disables the incremental computation
// paths; the default from Compile enables them whenever every aggregate is
// invertible. Exposed for the ablation benchmarks.
func (p *Plan) SetIncremental(on bool) {
	if on {
		for _, spec := range p.aggs {
			if spec.fn == query.Min || spec.fn == query.Max {
				return // cannot roll non-invertible functions
			}
		}
	}
	p.invertApl = on
}
