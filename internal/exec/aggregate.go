package exec

import (
	"math"

	"saber/internal/query"
)

// processAggregate runs the windowed-aggregation batch operator function:
// it computes the batch's window fragments and produces one WindowPartial
// per fragment. Sliding windows use incremental computation (paper §5.3):
// for invertible functions (count/sum/avg) the scalar path takes O(1) per
// fragment off prefix sums, and the grouped path maintains a rolling group
// table that is updated with the tuples entering and leaving consecutive
// fragments instead of being rebuilt.
func (p *Plan) processAggregate(in Batch, res *TaskResult) {
	s := p.in[0]
	tsz := s.TupleSize()
	n := len(in.Data) / tsz
	sc := p.getScratch()
	defer p.putScratch(sc)

	view := newTSView(s, in.Data)
	sc.frags = p.windows[0].Fragments(sc.frags[:0], n, view, in.Ctx)
	if len(sc.frags) == 0 {
		return
	}

	switch {
	case p.grouped && p.invertApl:
		p.aggGroupedRolling(in, sc, view, res)
	case p.grouped:
		p.aggGroupedDirect(in, sc, view, res)
	case p.invertApl:
		p.aggScalarPrefix(in, sc, view, res)
	default:
		p.aggScalarDirect(in, sc, view, res)
	}
}

func (p *Plan) tupleAt(in Batch, i int) []byte {
	tsz := p.in[0].TupleSize()
	return in.Data[i*tsz : (i+1)*tsz]
}

func fragLastTS(view tsView, start, end int) int64 {
	if end > start {
		return view.At(end - 1)
	}
	return minInt64
}

// aggScalarPrefix computes non-grouped invertible aggregates with prefix
// sums: each fragment's partial is a difference of two prefix entries.
func (p *Plan) aggScalarPrefix(in Batch, sc *scratch, view tsView, res *TaskResult) {
	n := view.Len()
	m := len(p.aggs)
	if cap(sc.prefixC) < n+1 {
		sc.prefixC = make([]int64, n+1)
		sc.prefixV = make([]float64, (n+1)*m)
	}
	prefC := sc.prefixC[:n+1]
	prefV := sc.prefixV[:(n+1)*m]
	prefC[0] = 0
	for a := 0; a < m; a++ {
		prefV[a] = 0
	}
	for i := 0; i < n; i++ {
		tuple := p.tupleAt(in, i)
		pass := p.filter == nil || p.filter.EvalTuple(tuple)
		d := int64(0)
		if pass {
			d = 1
		}
		prefC[i+1] = prefC[i] + d
		for a, spec := range p.aggs {
			v := 0.0
			if pass && spec.arg != nil {
				v = spec.arg.EvalFloat(tuple, nil)
			}
			prefV[(i+1)*m+a] = prefV[i*m+a] + v
		}
	}
	for _, f := range sc.frags {
		part := WindowPartial{
			Window:     f.Window,
			OpenedHere: f.Opens,
			ClosedHere: f.Closes,
			Count:      prefC[f.End] - prefC[f.Start],
			MaxTS:      fragLastTS(view, f.Start, f.End),
		}
		part.Vals = make([]float64, m)
		for a := 0; a < m; a++ {
			part.Vals[a] = prefV[f.End*m+a] - prefV[f.Start*m+a]
		}
		res.Partials = append(res.Partials, part)
	}
}

// aggScalarDirect recomputes each fragment by scanning its tuple range;
// used when a non-invertible function (min/max) is present. This is also
// the ablation path for BenchmarkAblationIncremental.
func (p *Plan) aggScalarDirect(in Batch, sc *scratch, view tsView, res *TaskResult) {
	m := len(p.aggs)
	for _, f := range sc.frags {
		part := WindowPartial{
			Window:     f.Window,
			OpenedHere: f.Opens,
			ClosedHere: f.Closes,
			MaxTS:      fragLastTS(view, f.Start, f.End),
			Vals:       make([]float64, m),
		}
		for a, spec := range p.aggs {
			switch spec.op {
			case OpMin:
				part.Vals[a] = math.Inf(1)
			case OpMax:
				part.Vals[a] = math.Inf(-1)
			}
		}
		for i := f.Start; i < f.End; i++ {
			tuple := p.tupleAt(in, i)
			if p.filter != nil && !p.filter.EvalTuple(tuple) {
				continue
			}
			part.Count++
			for a, spec := range p.aggs {
				if spec.arg == nil {
					continue
				}
				v := spec.arg.EvalFloat(tuple, nil)
				switch spec.op {
				case OpAdd:
					part.Vals[a] += v
				case OpMin:
					if v < part.Vals[a] {
						part.Vals[a] = v
					}
				case OpMax:
					if v > part.Vals[a] {
						part.Vals[a] = v
					}
				}
			}
		}
		res.Partials = append(res.Partials, part)
	}
}

// key extracts the group key of a tuple into dst.
func (p *Plan) key(dst, tuple []byte) []byte {
	s := p.in[0]
	dst = dst[:0]
	for _, fi := range p.groupIdx {
		off := s.Offset(fi)
		sz := s.Field(fi).Type.Size()
		dst = append(dst, tuple[off:off+sz]...)
	}
	return dst
}

func (p *Plan) seedSlot(sl Slot) {
	for a, op := range p.ops {
		switch op {
		case OpMin:
			sl.SetVal(a, math.Inf(1))
		case OpMax:
			sl.SetVal(a, math.Inf(-1))
		}
	}
}

// addTupleToSlot folds one tuple into a group slot with weight +1/-1.
func (p *Plan) addTupleToSlot(sl Slot, tuple []byte, sign float64) {
	sl.AddCount(int64(sign))
	for a, spec := range p.aggs {
		if spec.arg == nil {
			continue
		}
		v := spec.arg.EvalFloat(tuple, nil)
		switch spec.op {
		case OpAdd:
			sl.AddVal(a, sign*v)
		case OpMin:
			sl.MinVal(a, v)
		case OpMax:
			sl.MaxVal(a, v)
		}
	}
}

// aggGroupedRolling computes grouped fragments incrementally: the rolling
// table always holds the current fragment's groups; moving to the next
// fragment removes the tuples that leave the window and adds those that
// enter. Requires invertible aggregates.
func (p *Plan) aggGroupedRolling(in Batch, sc *scratch, view tsView, res *TaskResult) {
	if sc.rolling == nil || sc.rolling.KeyLen() != p.keyLen || sc.rolling.NumAggs() != len(p.aggs) {
		sc.rolling = NewHashTable(p.keyLen, len(p.aggs), 256)
	}
	roll := sc.rolling
	roll.Reset()
	var keyBuf []byte
	curStart, curEnd := sc.frags[0].Start, sc.frags[0].Start

	for _, f := range sc.frags {
		// Remove tuples leaving the window.
		for i := curStart; i < f.Start; i++ {
			tuple := p.tupleAt(in, i)
			if p.filter != nil && !p.filter.EvalTuple(tuple) {
				continue
			}
			keyBuf = p.key(keyBuf, tuple)
			if sl, ok := roll.Lookup(keyBuf); ok {
				p.addTupleToSlot(sl, tuple, -1)
			}
		}
		curStart = f.Start
		if curEnd < curStart {
			curEnd = curStart
		}
		// Add tuples entering the window.
		for i := curEnd; i < f.End; i++ {
			tuple := p.tupleAt(in, i)
			if p.filter != nil && !p.filter.EvalTuple(tuple) {
				continue
			}
			keyBuf = p.key(keyBuf, tuple)
			sl := roll.Upsert(keyBuf, p.seedSlot)
			p.addTupleToSlot(sl, tuple, +1)
			sl.ObserveTS(view.At(i))
		}
		curEnd = f.End

		// Snapshot the live groups into the fragment's table. A group's
		// max contributing timestamp stays correct under rolling removal
		// because removals always drop the window's oldest tuples.
		snap := p.newTable()
		lastTS := fragLastTS(view, f.Start, f.End)
		roll.Range(func(sl Slot) {
			if sl.Count() <= 0 {
				return
			}
			d := snap.Upsert(sl.Key(), p.seedSlot)
			d.AddCount(sl.Count())
			d.ObserveTS(sl.MaxTS())
			for a := range p.ops {
				d.SetVal(a, sl.Val(a))
			}
		})
		res.Partials = append(res.Partials, WindowPartial{
			Window:     f.Window,
			OpenedHere: f.Opens,
			ClosedHere: f.Closes,
			Table:      snap,
			MaxTS:      lastTS,
		})
	}
}

// aggGroupedDirect rebuilds each fragment's group table from scratch; used
// when a non-invertible function is present.
func (p *Plan) aggGroupedDirect(in Batch, sc *scratch, view tsView, res *TaskResult) {
	var keyBuf []byte
	for _, f := range sc.frags {
		table := p.newTable()
		for i := f.Start; i < f.End; i++ {
			tuple := p.tupleAt(in, i)
			if p.filter != nil && !p.filter.EvalTuple(tuple) {
				continue
			}
			keyBuf = p.key(keyBuf, tuple)
			sl := table.Upsert(keyBuf, p.seedSlot)
			p.addTupleToSlot(sl, tuple, +1)
			sl.ObserveTS(view.At(i))
		}
		res.Partials = append(res.Partials, WindowPartial{
			Window:     f.Window,
			OpenedHere: f.Opens,
			ClosedHere: f.Closes,
			Table:      table,
			MaxTS:      fragLastTS(view, f.Start, f.End),
		})
	}
}

// SetIncremental force-enables or disables the incremental computation
// paths; the default from Compile enables them whenever every aggregate is
// invertible. Exposed for the ablation benchmarks.
func (p *Plan) SetIncremental(on bool) {
	if on {
		for _, spec := range p.aggs {
			if spec.fn == query.Min || spec.fn == query.Max {
				return // cannot roll non-invertible functions
			}
		}
	}
	p.invertApl = on
}
