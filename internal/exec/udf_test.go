package exec

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"

	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

// medianUDF is the paper's example of an operator function that needs an
// elaborate decomposition (§3): the fragment partial carries the raw
// values; merge concatenates; finalize sorts and picks the median. Output
// schema: (timestamp, median float64).
func medianUDF(t *testing.T) *query.UDF {
	t.Helper()
	out := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "median", Type: schema.Float64},
	)
	s := synSchema
	return &query.UDF{
		Name: "median",
		Out:  out,
		ProcessFragment: func(in [][]byte) []byte {
			// Partial layout: maxTS int64, then float64 values.
			data := in[0]
			n := len(data) / s.TupleSize()
			partial := make([]byte, 8+8*n)
			maxTS := int64(math.MinInt64)
			for i := 0; i < n; i++ {
				tu := s.TupleAt(data, i)
				if ts := s.Timestamp(tu); ts > maxTS {
					maxTS = ts
				}
				binary.LittleEndian.PutUint64(partial[8+8*i:], math.Float64bits(float64(s.ReadFloat32(tu, 1))))
			}
			binary.LittleEndian.PutUint64(partial, uint64(maxTS))
			return partial
		},
		Merge: func(acc, next []byte) []byte {
			if len(acc) == 0 {
				return next
			}
			if len(next) == 0 {
				return acc
			}
			accTS := int64(binary.LittleEndian.Uint64(acc))
			nextTS := int64(binary.LittleEndian.Uint64(next))
			if nextTS > accTS {
				binary.LittleEndian.PutUint64(acc, uint64(nextTS))
			}
			return append(acc, next[8:]...)
		},
		Finalize: func(partial []byte) []byte {
			if len(partial) <= 8 {
				return nil
			}
			vals := make([]float64, 0, (len(partial)-8)/8)
			for o := 8; o+8 <= len(partial); o += 8 {
				vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(partial[o:])))
			}
			sort.Float64s(vals)
			med := vals[len(vals)/2]
			row := make([]byte, out.TupleSize())
			out.SetTimestamp(row, int64(binary.LittleEndian.Uint64(partial)))
			out.WriteFloat64(row, 1, med)
			return row
		},
	}
}

func TestUDFMedianAcrossBatchings(t *testing.T) {
	q := query.NewBuilder("median").
		From("S", synSchema, window.NewCount(50, 25)).
		UDF(medianUDF(t)).
		MustBuild()
	if q.OutputSchema().NumFields() != 2 {
		t.Fatalf("udf output schema = %s", q.OutputSchema())
	}
	p := mustCompile(t, q)
	if p.Kind != UDFOp || !p.RStream() {
		t.Fatalf("kind = %v", p.Kind)
	}

	stream := genStream(500, 31)
	ref := runPlan(t, p, stream, 500) // single batch
	for _, batch := range []int{7, 60, 123} {
		got := runPlan(t, mustCompile(t, q), stream, batch)
		if string(got) != string(ref) {
			t.Fatalf("batch %d: UDF result depends on batching (%d vs %d bytes)", batch, len(got), len(ref))
		}
	}
	// Spot-check one window against a direct median.
	out := q.OutputSchema()
	if len(ref) == 0 {
		t.Fatal("no output")
	}
	first := ref[:out.TupleSize()]
	var vals []float64
	for i := 0; i < 50; i++ {
		vals = append(vals, float64(synSchema.ReadFloat32(synSchema.TupleAt(stream, i), 1)))
	}
	sort.Float64s(vals)
	if got := out.ReadFloat64(first, 1); got != vals[25] {
		t.Fatalf("median = %g, want %g", got, vals[25])
	}
}

// partitionJoinUDF is the paper's UDF example (§2.4): an n-ary partition
// join — both windows are partitioned by a key, then corresponding
// partitions are joined. Output: (timestamp, key, leftCount, rightCount)
// per matched partition, which a plain θ-join cannot express.
func partitionJoinUDF(t *testing.T) *query.UDF {
	t.Helper()
	out := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "key", Type: schema.Int32},
		schema.Field{Name: "leftCount", Type: schema.Int64},
		schema.Field{Name: "rightCount", Type: schema.Int64},
	)
	left, right := leftSchema, rightSchema
	// Partial layout: repeated records of (key int32, lc int64, rc int64,
	// maxTS int64) = 28 bytes.
	const rec = 28
	fold := func(m map[int32][3]int64, s *schema.Schema, data []byte, side int) {
		n := len(data) / s.TupleSize()
		for i := 0; i < n; i++ {
			tu := s.TupleAt(data, i)
			k := s.ReadInt32(tu, 1)
			e := m[k]
			e[side]++
			if ts := s.Timestamp(tu); ts > e[2] {
				e[2] = ts
			}
			m[k] = e
		}
	}
	encode := func(m map[int32][3]int64) []byte {
		buf := make([]byte, 0, len(m)*rec)
		keys := make([]int32, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			e := m[k]
			var r [rec]byte
			binary.LittleEndian.PutUint32(r[0:], uint32(k))
			binary.LittleEndian.PutUint64(r[4:], uint64(e[0]))
			binary.LittleEndian.PutUint64(r[12:], uint64(e[1]))
			binary.LittleEndian.PutUint64(r[20:], uint64(e[2]))
			buf = append(buf, r[:]...)
		}
		return buf
	}
	decode := func(b []byte) map[int32][3]int64 {
		m := map[int32][3]int64{}
		for o := 0; o+rec <= len(b); o += rec {
			k := int32(binary.LittleEndian.Uint32(b[o:]))
			m[k] = [3]int64{
				int64(binary.LittleEndian.Uint64(b[o+4:])),
				int64(binary.LittleEndian.Uint64(b[o+12:])),
				int64(binary.LittleEndian.Uint64(b[o+20:])),
			}
		}
		return m
	}
	return &query.UDF{
		Name: "partitionJoin",
		Out:  out,
		ProcessFragment: func(in [][]byte) []byte {
			m := map[int32][3]int64{}
			fold(m, left, in[0], 0)
			fold(m, right, in[1], 1)
			return encode(m)
		},
		Merge: func(acc, next []byte) []byte {
			m := decode(acc)
			for k, e := range decode(next) {
				a := m[k]
				a[0] += e[0]
				a[1] += e[1]
				if e[2] > a[2] {
					a[2] = e[2]
				}
				m[k] = a
			}
			return encode(m)
		},
		Finalize: func(partial []byte) []byte {
			var dst []byte
			m := decode(partial)
			keys := make([]int32, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, k := range keys {
				e := m[k]
				if e[0] == 0 || e[1] == 0 {
					continue // partition present on one side only
				}
				row := make([]byte, out.TupleSize())
				out.SetTimestamp(row, e[2])
				out.WriteInt32(row, 1, k)
				out.WriteInt64(row, 2, e[0])
				out.WriteInt64(row, 3, e[1])
				dst = append(dst, row...)
			}
			return dst
		},
	}
}

func TestUDFPartitionJoin(t *testing.T) {
	q := query.NewBuilder("pjoin").
		FromAs("L", "L", leftSchema, window.NewCount(16, 16)).
		FromAs("R", "R", rightSchema, window.NewCount(16, 16)).
		UDF(partitionJoinUDF(t)).
		MustBuild()
	p := mustCompile(t, q)
	l, r := genPair(64, 4)
	ref := runPlanStreams(t, p, [2][]byte{l, r}, 64)
	for _, batch := range []int{5, 16, 33} {
		got := runPlanStreams(t, mustCompile(t, q), [2][]byte{l, r}, batch)
		if string(got) != string(ref) {
			t.Fatalf("batch %d: partition join depends on batching", batch)
		}
	}
	// Each tumbling window of 16 has 4 keys with 4 tuples per side.
	out := q.OutputSchema()
	osz := out.TupleSize()
	if len(ref)/osz != 4*4 { // 4 windows × 4 keys
		t.Fatalf("rows = %d, want 16", len(ref)/osz)
	}
	for o := 0; o+osz <= len(ref); o += osz {
		if out.ReadInt(ref[o:], 2) != 4 || out.ReadInt(ref[o:], 3) != 4 {
			t.Fatalf("partition counts wrong: %s", out.Format(ref[o:o+osz]))
		}
	}
}

func TestUDFValidation(t *testing.T) {
	bad := &query.UDF{Name: "x"}
	q := query.NewBuilder("bad").
		From("S", synSchema, window.NewCount(4, 4)).
		UDF(bad)
	if _, err := q.Build(); err == nil {
		t.Error("incomplete UDF accepted")
	}
	full := medianUDF(t)
	mixed := query.NewBuilder("mixed").
		From("S", synSchema, window.NewCount(4, 4)).
		Select("timestamp").
		UDF(full)
	if _, err := mixed.Build(); err == nil {
		t.Error("UDF mixed with projection accepted")
	}
	noTS := *full
	noTS.Out = schema.MustNew(schema.Field{Name: "x", Type: schema.Int32})
	if _, err := (query.NewBuilder("nots").
		From("S", synSchema, window.NewCount(4, 4)).
		UDF(&noTS)).Build(); err == nil {
		t.Error("UDF output without timestamp accepted")
	}
}
