package exec

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/window"
)

// rowsAsSet renders output rows as sorted strings (group iteration order is
// hash-dependent, so grouped results compare as sets per window; we fold
// the timestamp in to keep rows distinct across windows).
func rowsAsSet(p *Plan, out []byte) []string {
	osz := p.OutputSchema().TupleSize()
	s := p.OutputSchema()
	var rows []string
	for i := 0; i+osz <= len(out); i += osz {
		row := out[i : i+osz]
		var b strings.Builder
		for f := 0; f < s.NumFields(); f++ {
			fmt.Fprintf(&b, "%s=%.4f;", s.Field(f).Name, s.ReadFloat(row, f))
		}
		rows = append(rows, b.String())
	}
	sort.Strings(rows)
	return rows
}

func groupedPlan(t *testing.T, w window.Def, incremental bool) *Plan {
	t.Helper()
	q := query.NewBuilder("grp").
		From("S", synSchema, w).
		Aggregate(query.Sum, expr.Col("a"), "s").
		Aggregate(query.Count, nil, "n").
		GroupBy("b").
		MustBuild()
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	p.SetIncremental(incremental)
	return p
}

// TestGroupedRollingMatchesDirect: the incremental (rolling-table) batch
// operator function must produce exactly what the naive rebuild produces,
// for sliding and tumbling windows and across batch sizes.
func TestGroupedRollingMatchesDirect(t *testing.T) {
	stream := genStream(300, 11)
	for _, w := range []window.Def{
		window.NewCount(16, 4),
		window.NewCount(8, 8),
		window.NewCount(32, 1),
		window.NewTime(25, 5),
		window.NewTime(10, 10),
	} {
		for _, batch := range []int{7, 64, 300} {
			inc := runPlan(t, groupedPlan(t, w, true), stream, batch)
			dir := runPlan(t, groupedPlan(t, w, false), stream, batch)
			a, b := rowsAsSet(groupedPlan(t, w, true), inc), rowsAsSet(groupedPlan(t, w, false), dir)
			if len(a) != len(b) {
				t.Fatalf("%v batch %d: %d vs %d rows", w, batch, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v batch %d row %d:\n inc %s\n dir %s", w, batch, i, a[i], b[i])
				}
			}
		}
	}
}

// TestGroupedAgainstReference checks grouped sums/counts against a naive
// per-window map computation.
func TestGroupedAgainstReference(t *testing.T) {
	w := window.NewCount(20, 5)
	stream := genStream(200, 12)
	p := groupedPlan(t, w, true)
	got := rowsAsSet(p, runPlan(t, p, stream, 23))

	// Naive reference.
	tsz := synSchema.TupleSize()
	n := len(stream) / tsz
	type key struct {
		win int64
		b   int32
	}
	type acc struct {
		sum float64
		cnt int64
		ts  int64
	}
	ref := map[key]*acc{}
	for i := 0; i < n; i++ {
		tu := stream[i*tsz : (i+1)*tsz]
		for k := int64(0); w.Start(k) <= int64(i); k++ {
			if int64(i) >= w.End(k) {
				continue
			}
			kk := key{k, synSchema.ReadInt32(tu, 2)}
			a := ref[kk]
			if a == nil {
				a = &acc{}
				ref[kk] = a
			}
			a.sum += float64(synSchema.ReadFloat32(tu, 1))
			a.cnt++
			// Rows are stamped with the group's last contributing
			// timestamp; tuples arrive in timestamp order.
			a.ts = synSchema.Timestamp(tu)
		}
	}
	var want []string
	for kk, a := range ref {
		_ = kk
		want = append(want, fmt.Sprintf("timestamp=%.4f;b=%.4f;s=%.4f;n=%.4f;",
			float64(a.ts), float64(kk.b), a.sum, float64(a.cnt)))
	}
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("rows: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d:\n got  %s\n want %s", i, got[i], want[i])
		}
	}
}

func TestGroupedMinMaxPath(t *testing.T) {
	w := window.NewCount(10, 10)
	q := query.NewBuilder("gmm").
		From("S", synSchema, w).
		Aggregate(query.Min, expr.Col("a"), "lo").
		Aggregate(query.Max, expr.Col("a"), "hi").
		GroupBy("d").
		MustBuild()
	p, _ := Compile(q)
	if p.invertApl {
		t.Fatal("grouped min/max must use the direct path")
	}
	stream := genStream(100, 13)
	out := runPlan(t, p, stream, 33)
	// Sanity: lo <= hi on every row, and rows exist.
	s := p.OutputSchema()
	osz := s.TupleSize()
	if len(out) == 0 {
		t.Fatal("no output")
	}
	for i := 0; i+osz <= len(out); i += osz {
		lo, hi := s.ReadFloat(out[i:], 2), s.ReadFloat(out[i:], 3)
		if lo > hi || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			t.Fatalf("row lo=%g hi=%g", lo, hi)
		}
	}
}

func TestHavingFiltersRows(t *testing.T) {
	w := window.NewCount(10, 10)
	build := func(having bool) *Plan {
		b := query.NewBuilder("hav").
			From("S", synSchema, w).
			Aggregate(query.Count, nil, "n").
			GroupBy("b")
		if having {
			b.Having(expr.Cmp{Op: expr.Gt, Left: expr.Col("n"), Right: expr.IntConst(1)})
		}
		return mustCompile(t, b.MustBuild())
	}
	stream := genStream(200, 14)
	all := runPlan(t, build(false), stream, 50)
	filtered := runPlan(t, build(true), stream, 50)
	s := build(true).OutputSchema()
	osz := s.TupleSize()
	if len(filtered) >= len(all) {
		t.Fatalf("having did not filter: %d vs %d rows", len(filtered)/osz, len(all)/osz)
	}
	for i := 0; i+osz <= len(filtered); i += osz {
		if s.ReadInt(filtered[i:], 2) <= 1 {
			t.Fatal("having let a row through")
		}
	}
}

func mustCompile(t *testing.T, q *query.Query) *Plan {
	t.Helper()
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDistinct(t *testing.T) {
	q := query.NewBuilder("dist").
		From("S", synSchema, window.NewCount(50, 50)).
		Select("timestamp", "b").
		Distinct().
		MustBuild()
	p := mustCompile(t, q)
	stream := genStream(100, 15)
	out := runPlan(t, p, stream, 17)
	s := p.OutputSchema()
	osz := s.TupleSize()
	// Two tumbling windows of 50 tuples; b has ≤8 distinct values each.
	rows := len(out) / osz
	if rows == 0 || rows > 16 {
		t.Fatalf("distinct rows = %d", rows)
	}
	seen := map[string]bool{}
	for i := 0; i+osz <= len(out); i += osz {
		k := fmt.Sprintf("%d@%d", s.ReadInt32(out[i:], 1), s.Timestamp(out[i:])/50)
		if seen[k] {
			t.Fatalf("duplicate distinct row %s", k)
		}
		seen[k] = true
	}
}

func TestDistinctValidation(t *testing.T) {
	q := query.NewBuilder("badDist").
		From("S", synSchema, window.NewCount(8, 8)).
		Select("b"). // timestamp not first
		Distinct().
		MustBuild()
	if _, err := Compile(q); err == nil {
		t.Fatal("distinct without leading timestamp compiled")
	}
	q2 := query.NewBuilder("badDist2").
		From("S", synSchema, window.NewCount(8, 8)).
		Select("timestamp").
		Distinct().
		MustBuild()
	if _, err := Compile(q2); err == nil {
		t.Fatal("distinct with only timestamp compiled")
	}
}

// TestBatchingInvarianceProperty is the central hybrid-model invariant
// (paper §3): the query result must not depend on how the stream is cut
// into batches. We run the same grouped sliding aggregation under random
// batch sizes and compare with the single-batch run.
func TestBatchingInvarianceProperty(t *testing.T) {
	stream := genStream(256, 16)
	w := window.NewCount(12, 5)
	ref := rowsAsSet(groupedPlan(t, w, true), runPlan(t, groupedPlan(t, w, true), stream, 256))
	f := func(batchSeed uint8) bool {
		batch := int(batchSeed%60) + 1
		got := rowsAsSet(groupedPlan(t, w, true), runPlan(t, groupedPlan(t, w, true), stream, batch))
		if len(got) != len(ref) {
			return false
		}
		for i := range got {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
