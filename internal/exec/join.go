package exec

import (
	"saber/internal/expr"
	"saber/internal/window"
)

// JoinPair describes one window's fragment pair within a join task, with
// per-side open/close state derived from each side's stream horizon —
// not from fragment presence, because with rate-mismatched or lagging
// inputs a window may be covered by only one side's batch, and it may
// close on the two sides in different tasks.
type JoinPair struct {
	Window       int64
	FA, FB       window.Fragment
	HaveA, HaveB bool
	// Opened reports that no earlier task contributed to this window on
	// either side. ClosedA/ClosedB report that the respective side's
	// stream has passed the window's end (at or before this task).
	Opened           bool
	ClosedA, ClosedB bool
}

// sideOpened reports whether no tuple before this batch belongs to
// window k on a stream with the given batch context.
func sideOpened(d window.Def, ctx window.Context, k int64) bool {
	switch d.Kind {
	case window.Count:
		return ctx.FirstIndex <= d.Start(k)
	case window.Time:
		return ctx.PrevTimestamp == window.NoPrev || ctx.PrevTimestamp < d.Start(k)
	}
	return ctx.FirstIndex == 0 && ctx.PrevTimestamp == window.NoPrev
}

// sideClosed reports whether the stream has passed window k's end after
// consuming this batch (n tuples, last timestamp lastTS; for an empty
// batch lastTS falls back to the context's previous timestamp).
func sideClosed(d window.Def, ctx window.Context, n int, lastTS int64, k int64) bool {
	switch d.Kind {
	case window.Count:
		return ctx.FirstIndex+int64(n) >= d.End(k)
	case window.Time:
		if n == 0 {
			lastTS = ctx.PrevTimestamp
		}
		return lastTS != window.NoPrev && lastTS >= d.End(k)
	}
	return false
}

// JoinPairs computes the window fragment pairs of a two-input task, in
// window order. Exported for the GPGPU kernel, which runs the same
// pairing host-side (window computation stays on the CPU, §5.4).
func (p *Plan) JoinPairs(in [2]Batch) []JoinPair {
	va := newTSView(p.in[0], in[0].Data)
	vb := newTSView(p.in[1], in[1].Data)
	fragsA := p.windows[0].Fragments(nil, va.Len(), va, in[0].Ctx)
	fragsB := p.windows[1].Fragments(nil, vb.Len(), vb, in[1].Ctx)
	return p.pairFrags(nil, fragsA, fragsB, in, va, vb)
}

// pairFrags merges two fragment lists into window pairs, appending to
// dst. The CPU path feeds it scratch-pooled fragment and pair buffers so
// steady state allocates nothing.
func (p *Plan) pairFrags(dst []JoinPair, fragsA, fragsB []window.Fragment, in [2]Batch, va, vb tsView) []JoinPair {
	lastA, lastB := int64(window.NoPrev), int64(window.NoPrev)
	if va.Len() > 0 {
		lastA = va.At(va.Len() - 1)
	}
	if vb.Len() > 0 {
		lastB = vb.At(vb.Len() - 1)
	}

	i, j := 0, 0
	for i < len(fragsA) || j < len(fragsB) {
		var pr JoinPair
		switch {
		case i < len(fragsA) && (j >= len(fragsB) || fragsA[i].Window <= fragsB[j].Window):
			pr.FA, pr.HaveA = fragsA[i], true
			pr.Window = fragsA[i].Window
			if j < len(fragsB) && fragsB[j].Window == pr.Window {
				pr.FB, pr.HaveB = fragsB[j], true
				j++
			}
			i++
		default:
			pr.FB, pr.HaveB = fragsB[j], true
			pr.Window = fragsB[j].Window
			j++
		}
		pr.Opened = sideOpened(p.windows[0], in[0].Ctx, pr.Window) &&
			sideOpened(p.windows[1], in[1].Ctx, pr.Window)
		pr.ClosedA = sideClosed(p.windows[0], in[0].Ctx, va.Len(), lastA, pr.Window)
		pr.ClosedB = sideClosed(p.windows[1], in[1].Ctx, vb.Len(), lastB, pr.Window)
		dst = append(dst, pr)
	}
	return dst
}

// processJoin runs the windowed θ-join batch operator function (paper
// §5.3, following Kang et al.). The fragment result for window k contains
// the θ-join of the two fragments, plus — for windows still open on
// either side — the raw fragment data of both sides, so the assembly
// operator function can join tuple pairs that span query tasks.
func (p *Plan) processJoin(in [2]Batch, res *TaskResult) {
	sa, sb := p.in[0], p.in[1]
	va := newTSView(sa, in[0].Data)
	vb := newTSView(sb, in[1].Data)
	sc := p.getScratch()
	defer p.putScratch(sc)
	sc.frags = p.windows[0].Fragments(sc.frags[:0], va.Len(), va, in[0].Ctx)
	sc.fragsB = p.windows[1].Fragments(sc.fragsB[:0], vb.Len(), vb, in[1].Ctx)
	sc.pairs = p.pairFrags(sc.pairs[:0], sc.frags, sc.fragsB, in, va, vb)
	for _, pr := range sc.pairs {
		part := p.joinPartial(pr, in, sa.TupleSize(), sb.TupleSize(), va, vb, sc)
		res.Partials = append(res.Partials, part)
	}
}

// joinPartial builds the WindowPartial for one pair (shared with the
// GPGPU kernel, which parallelises the calls across windows).
func (p *Plan) joinPartial(pr JoinPair, in [2]Batch, asz, bsz int, va, vb tsView, sc *scratch) WindowPartial {
	part := WindowPartial{
		Window:     pr.Window,
		OpenedHere: pr.Opened,
		ClosedHere: pr.ClosedA && pr.ClosedB,
		MaxTS:      minInt64,
	}
	part.ClosedSides[0] = pr.ClosedA
	part.ClosedSides[1] = pr.ClosedB
	var aData, bData []byte
	if pr.HaveA {
		aData = in[0].Data[pr.FA.Start*asz : pr.FA.End*asz]
		if ts := fragLastTS(va, pr.FA.Start, pr.FA.End); ts > part.MaxTS {
			part.MaxTS = ts
		}
	}
	if pr.HaveB {
		bData = in[1].Data[pr.FB.Start*bsz : pr.FB.End*bsz]
		if ts := fragLastTS(vb, pr.FB.Start, pr.FB.End); ts > part.MaxTS {
			part.MaxTS = ts
		}
	}
	part.Data = p.joinCross(nil, aData, bData, sc)
	if !(part.OpenedHere && part.ClosedHere) {
		// Keep raw fragments for cross-task pairs during assembly —
		// needed by every partial that will be merged, including the
		// one that closes the window.
		part.AData = append(part.AData, aData...)
		part.BData = append(part.BData, bData...)
	}
	return part
}

// JoinPartial is the exported form used by the GPGPU kernel.
func (p *Plan) JoinPartial(pr JoinPair, in [2]Batch) WindowPartial {
	sa, sb := p.in[0], p.in[1]
	sc := p.getScratch()
	defer p.putScratch(sc)
	return p.joinPartial(pr, in, sa.TupleSize(), sb.TupleSize(),
		newTSView(sa, in[0].Data), newTSView(sb, in[1].Data), sc)
}

// joinCross appends to dst the projected join result of every tuple pair
// (a, b) with a from aData and b from bData that satisfies the predicate,
// in (a, b) scan order. sc may be nil (assembly-time callers); batch-time
// callers pass their task scratch.
//
// The vectorized path evaluates the predicate for one left tuple against
// the whole right fragment per inner pass. When the predicate carries an
// integer equality conjunct, the right fragment is bucketed by key first,
// so each left tuple only tests its key-equal candidates; candidate
// chains are built in ascending order to preserve the nested-loop output
// byte-for-byte.
func (p *Plan) joinCross(dst, aData, bData []byte, sc *scratch) []byte {
	if len(aData) == 0 || len(bData) == 0 {
		return dst
	}
	asz, bsz := p.in[0].TupleSize(), p.in[1].TupleSize()
	if !p.vec {
		for ao := 0; ao+asz <= len(aData); ao += asz {
			a := aData[ao : ao+asz]
			for bo := 0; bo+bsz <= len(bData); bo += bsz {
				b := bData[bo : bo+bsz]
				if p.joinPred.Eval(a, b) {
					dst = p.writeOut(dst, a, b)
				}
			}
		}
		return dst
	}
	if sc == nil {
		sc = p.getScratch()
		defer p.putScratch(sc)
	}
	nb := len(bData) / bsz
	if p.eqJoin.ok {
		// Bucket the right fragment by key: chains are threaded back to
		// front so each key's candidates come out in ascending order.
		if sc.eqHead == nil {
			sc.eqHead = make(map[int64]int32, nb)
		} else {
			clear(sc.eqHead)
		}
		if cap(sc.eqNext) < nb {
			sc.eqNext = make([]int32, nb)
		}
		next := sc.eqNext[:nb]
		for bi := nb - 1; bi >= 0; bi-- {
			k := readIntKey(bData[bi*bsz:], p.eqJoin.bOff, p.eqJoin.bTyp)
			if h, ok := sc.eqHead[k]; ok {
				next[bi] = h
			} else {
				next[bi] = -1
			}
			sc.eqHead[k] = int32(bi)
		}
		for ao := 0; ao+asz <= len(aData); ao += asz {
			a := aData[ao : ao+asz]
			k := readIntKey(a, p.eqJoin.aOff, p.eqJoin.aTyp)
			bi, ok := sc.eqHead[k]
			if !ok {
				continue
			}
			for ; bi >= 0; bi = next[bi] {
				b := bData[int(bi)*bsz : int(bi)*bsz+bsz]
				// Re-test the full predicate: the equality conjunct is
				// redundant on candidates, the remaining conjuncts are not.
				if p.joinPred.Eval(a, b) {
					dst = p.writeOut(dst, a, b)
				}
			}
		}
		return dst
	}
	for ao := 0; ao+asz <= len(aData); ao += asz {
		a := aData[ao : ao+asz]
		sc.selJ = p.joinPred.EvalBatch(&sc.vec, sc.selJ,
			expr.BatchInput{L: a, LStride: 0, R: bData, RStride: bsz, N: nb})
		for _, bi := range sc.selJ {
			dst = p.writeOut(dst, a, bData[int(bi)*bsz:int(bi)*bsz+bsz])
		}
	}
	return dst
}
