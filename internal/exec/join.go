package exec

import "saber/internal/window"

// JoinPair describes one window's fragment pair within a join task, with
// per-side open/close state derived from each side's stream horizon —
// not from fragment presence, because with rate-mismatched or lagging
// inputs a window may be covered by only one side's batch, and it may
// close on the two sides in different tasks.
type JoinPair struct {
	Window       int64
	FA, FB       window.Fragment
	HaveA, HaveB bool
	// Opened reports that no earlier task contributed to this window on
	// either side. ClosedA/ClosedB report that the respective side's
	// stream has passed the window's end (at or before this task).
	Opened           bool
	ClosedA, ClosedB bool
}

// sideOpened reports whether no tuple before this batch belongs to
// window k on a stream with the given batch context.
func sideOpened(d window.Def, ctx window.Context, k int64) bool {
	switch d.Kind {
	case window.Count:
		return ctx.FirstIndex <= d.Start(k)
	case window.Time:
		return ctx.PrevTimestamp == window.NoPrev || ctx.PrevTimestamp < d.Start(k)
	}
	return ctx.FirstIndex == 0 && ctx.PrevTimestamp == window.NoPrev
}

// sideClosed reports whether the stream has passed window k's end after
// consuming this batch (n tuples, last timestamp lastTS; for an empty
// batch lastTS falls back to the context's previous timestamp).
func sideClosed(d window.Def, ctx window.Context, n int, lastTS int64, k int64) bool {
	switch d.Kind {
	case window.Count:
		return ctx.FirstIndex+int64(n) >= d.End(k)
	case window.Time:
		if n == 0 {
			lastTS = ctx.PrevTimestamp
		}
		return lastTS != window.NoPrev && lastTS >= d.End(k)
	}
	return false
}

// JoinPairs computes the window fragment pairs of a two-input task, in
// window order. Exported for the GPGPU kernel, which runs the same
// pairing host-side (window computation stays on the CPU, §5.4).
func (p *Plan) JoinPairs(in [2]Batch) []JoinPair {
	sa, sb := p.in[0], p.in[1]
	va := newTSView(sa, in[0].Data)
	vb := newTSView(sb, in[1].Data)
	fragsA := p.windows[0].Fragments(nil, va.Len(), va, in[0].Ctx)
	fragsB := p.windows[1].Fragments(nil, vb.Len(), vb, in[1].Ctx)

	lastA, lastB := int64(window.NoPrev), int64(window.NoPrev)
	if va.Len() > 0 {
		lastA = va.At(va.Len() - 1)
	}
	if vb.Len() > 0 {
		lastB = vb.At(vb.Len() - 1)
	}

	var pairs []JoinPair
	i, j := 0, 0
	for i < len(fragsA) || j < len(fragsB) {
		var pr JoinPair
		switch {
		case i < len(fragsA) && (j >= len(fragsB) || fragsA[i].Window <= fragsB[j].Window):
			pr.FA, pr.HaveA = fragsA[i], true
			pr.Window = fragsA[i].Window
			if j < len(fragsB) && fragsB[j].Window == pr.Window {
				pr.FB, pr.HaveB = fragsB[j], true
				j++
			}
			i++
		default:
			pr.FB, pr.HaveB = fragsB[j], true
			pr.Window = fragsB[j].Window
			j++
		}
		pr.Opened = sideOpened(p.windows[0], in[0].Ctx, pr.Window) &&
			sideOpened(p.windows[1], in[1].Ctx, pr.Window)
		pr.ClosedA = sideClosed(p.windows[0], in[0].Ctx, va.Len(), lastA, pr.Window)
		pr.ClosedB = sideClosed(p.windows[1], in[1].Ctx, vb.Len(), lastB, pr.Window)
		pairs = append(pairs, pr)
	}
	return pairs
}

// processJoin runs the windowed θ-join batch operator function (paper
// §5.3, following Kang et al.). The fragment result for window k contains
// the θ-join of the two fragments, plus — for windows still open on
// either side — the raw fragment data of both sides, so the assembly
// operator function can join tuple pairs that span query tasks.
func (p *Plan) processJoin(in [2]Batch, res *TaskResult) {
	sa, sb := p.in[0], p.in[1]
	va := newTSView(sa, in[0].Data)
	vb := newTSView(sb, in[1].Data)
	for _, pr := range p.JoinPairs(in) {
		part := p.joinPartial(pr, in, sa.TupleSize(), sb.TupleSize(), va, vb)
		res.Partials = append(res.Partials, part)
	}
}

// joinPartial builds the WindowPartial for one pair (shared with the
// GPGPU kernel, which parallelises the calls across windows).
func (p *Plan) joinPartial(pr JoinPair, in [2]Batch, asz, bsz int, va, vb tsView) WindowPartial {
	part := WindowPartial{
		Window:     pr.Window,
		OpenedHere: pr.Opened,
		ClosedHere: pr.ClosedA && pr.ClosedB,
		MaxTS:      minInt64,
	}
	part.ClosedSides[0] = pr.ClosedA
	part.ClosedSides[1] = pr.ClosedB
	var aData, bData []byte
	if pr.HaveA {
		aData = in[0].Data[pr.FA.Start*asz : pr.FA.End*asz]
		if ts := fragLastTS(va, pr.FA.Start, pr.FA.End); ts > part.MaxTS {
			part.MaxTS = ts
		}
	}
	if pr.HaveB {
		bData = in[1].Data[pr.FB.Start*bsz : pr.FB.End*bsz]
		if ts := fragLastTS(vb, pr.FB.Start, pr.FB.End); ts > part.MaxTS {
			part.MaxTS = ts
		}
	}
	part.Data = p.joinCross(nil, aData, bData)
	if !(part.OpenedHere && part.ClosedHere) {
		// Keep raw fragments for cross-task pairs during assembly —
		// needed by every partial that will be merged, including the
		// one that closes the window.
		part.AData = append(part.AData, aData...)
		part.BData = append(part.BData, bData...)
	}
	return part
}

// JoinPartial is the exported form used by the GPGPU kernel.
func (p *Plan) JoinPartial(pr JoinPair, in [2]Batch) WindowPartial {
	sa, sb := p.in[0], p.in[1]
	return p.joinPartial(pr, in, sa.TupleSize(), sb.TupleSize(),
		newTSView(sa, in[0].Data), newTSView(sb, in[1].Data))
}

// joinCross appends to dst the projected join result of every tuple pair
// (a, b) with a from aData and b from bData that satisfies the predicate.
func (p *Plan) joinCross(dst, aData, bData []byte) []byte {
	if len(aData) == 0 || len(bData) == 0 {
		return dst
	}
	asz, bsz := p.in[0].TupleSize(), p.in[1].TupleSize()
	for ao := 0; ao+asz <= len(aData); ao += asz {
		a := aData[ao : ao+asz]
		for bo := 0; bo+bsz <= len(bData); bo += bsz {
			b := bData[bo : bo+bsz]
			if p.joinPred.Eval(a, b) {
				dst = p.writeOut(dst, a, b)
			}
		}
	}
	return dst
}
