package exec

import (
	"saber/internal/expr"
	"saber/internal/window"
)

// This file is the seam between the compiled plan and the (simulated)
// GPGPU kernels in internal/gpu: the kernels implement the paper's §5.4
// algorithms — prefix-sum compaction, per-fragment reduction, atomic
// open-addressing tables, two-pass joins — against these hooks, so both
// processors evaluate the same compiled expressions and produce
// assembly-compatible results.

// EvalFilter evaluates the WHERE predicate over a tuple (true when the
// query has no predicate).
func (p *Plan) EvalFilter(tuple []byte) bool {
	return p.filter == nil || p.filter.EvalTuple(tuple)
}

// FilterSelect appends to sel[:0] the indices in [lo, hi) of input-0
// tuples passing the WHERE predicate, using one batch evaluation over
// the range. The GPGPU map kernel uses it per workgroup so both backends
// run the same count+compact structure. cols, when non-nil, holds the
// full batch's per-field column segments (Batch.Cols layout); the range
// is then evaluated from the dense columns — with nil data too when the
// plan is RowFreeMap, the GPU's no-gather staging path.
func (p *Plan) FilterSelect(sel []int32, data []byte, cols [][]byte, lo, hi int) []int32 {
	sel = sel[:0]
	if p.filter == nil {
		for i := lo; i < hi; i++ {
			sel = append(sel, int32(i))
		}
		return sel
	}
	tsz := p.in[0].TupleSize()
	sc := p.getScratch()
	bi := expr.BatchInput{LStride: tsz, N: hi - lo}
	if data != nil {
		bi.L = data[lo*tsz:]
	}
	if cols != nil {
		sc.colsBuf = sliceCols(sc.colsBuf, cols, p.colW[0], lo, hi)
		bi.LCols, bi.LColOffs = sc.colsBuf, p.colOffs[0]
	}
	sel = p.filter.EvalBatch(&sc.vec, sel, bi)
	p.putScratch(sc)
	if lo != 0 {
		for i := range sel {
			sel[i] += int32(lo)
		}
	}
	return sel
}

// sliceCols fills dst with per-field views of tuple range [lo, hi) of
// full-batch column segments (nil entries pass through).
func sliceCols(dst [][]byte, cols [][]byte, widths []int, lo, hi int) [][]byte {
	dst = dst[:0]
	for j, c := range cols {
		if c == nil {
			dst = append(dst, nil)
			continue
		}
		w := widths[j]
		dst = append(dst, c[lo*w:hi*w])
	}
	return dst
}

// WriteOutputBatch appends the output tuples for the selected rows
// (batch-absolute indices) of a packed batch with optional column
// segments — the compact half the GPGPU map kernel shares with the CPU
// operators. For RowFreeMap plans data may be nil.
func (p *Plan) WriteOutputBatch(dst, data []byte, cols [][]byte, n int, sel []int32) []byte {
	sc := p.getScratch()
	dst = p.writeOutBatch(dst, Batch{Data: data, Cols: cols}, p.in[0].TupleSize(), n, sel, false, sc)
	p.putScratch(sc)
	return dst
}

// EvalJoinPred evaluates the θ-join predicate over a tuple pair.
func (p *Plan) EvalJoinPred(l, r []byte) bool { return p.joinPred.Eval(l, r) }

// WriteOutput appends the output tuple for the given input tuple(s); r is
// nil for single-input plans.
func (p *Plan) WriteOutput(dst, l, r []byte) []byte { return p.writeOut(dst, l, r) }

// Fragments computes input i's window fragments for a batch of n tuples.
func (p *Plan) Fragments(dst []window.Fragment, i, n int, data []byte, ctx window.Context) []window.Fragment {
	view := newTSView(p.in[i], data)
	_ = n
	return p.windows[i].Fragments(dst, view.Len(), view, ctx)
}

// NumAggs returns the number of aggregates.
func (p *Plan) NumAggs() int { return len(p.aggs) }

// AggOps returns the per-accumulator merge operations.
func (p *Plan) AggOps() []MergeOp { return p.ops }

// AggArg evaluates aggregate a's argument over a tuple (0 for count).
func (p *Plan) AggArg(a int, tuple []byte) float64 {
	if p.aggs[a].arg == nil {
		return 0
	}
	return p.aggs[a].arg.EvalFloat(tuple, nil)
}

// Grouped reports whether the aggregation has GROUP BY (or DISTINCT).
func (p *Plan) Grouped() bool { return p.grouped }

// KeyLen returns the group key width in bytes.
func (p *Plan) KeyLen() int { return p.keyLen }

// GroupKey extracts a tuple's group key into dst.
func (p *Plan) GroupKey(dst, tuple []byte) []byte { return p.key(dst, tuple) }

// NewTable fetches a pooled, reset group table compatible with Merge and
// Finalize.
func (p *Plan) NewTable() *HashTable { return p.newTable() }

// SeedSlot initialises a fresh group slot's accumulators (±Inf for
// min/max).
func (p *Plan) SeedSlot(sl Slot) { p.seedSlot(sl) }

// FoldTuple folds one tuple into a group slot.
func (p *Plan) FoldTuple(sl Slot, tuple []byte) { p.addTupleToSlot(sl, tuple, +1) }

// TimestampOf returns the timestamp of tuple i in a packed batch of
// input side's schema.
func (p *Plan) TimestampOf(side int, data []byte, i int) int64 {
	s := p.in[side]
	return s.Timestamp(data[i*s.TupleSize():])
}

// JoinCross appends the projected θ-join of two packed fragments.
func (p *Plan) JoinCross(dst, aData, bData []byte) []byte {
	return p.joinCross(dst, aData, bData, nil)
}
