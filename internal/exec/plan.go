package exec

import (
	"fmt"
	"math"
	"sync"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

// Kind classifies a compiled plan by its execution strategy.
type Kind uint8

// Plan kinds.
const (
	// Map covers projection and selection: stateless per-tuple transforms
	// with IStream semantics; windows do not affect the output.
	Map Kind = iota
	// Aggregate covers windowed aggregation, GROUP BY, HAVING and
	// DISTINCT, with RStream semantics.
	Aggregate
	// Join covers the windowed θ-join, with RStream semantics.
	Join
	// UDFOp covers user-defined operator functions, with RStream
	// semantics over opaque partials.
	UDFOp
)

// String names the kind.
func (k Kind) String() string {
	return [...]string{"map", "aggregate", "join", "udf"}[k]
}

type aggSpec struct {
	fn   query.AggFunc
	arg  *expr.NumProgram // nil for count
	op   MergeOp
	outF int // output schema field index
}

type fieldWriter struct {
	// Byte-forwarding path: copy size bytes from srcOff of the tuple on
	// side src. size == 0 selects the computed path.
	src    int
	srcOff int
	size   int
	// Computed path.
	prog   *expr.NumProgram
	outIdx int
}

// Plan is a compiled query: the batch operator function (Process), the
// assembly operator function (Merge/Finalize), and the metadata the engine
// needs to route data. Plans are safe for concurrent Process calls.
type Plan struct {
	Q    *query.Query
	Kind Kind

	in      [2]*schema.Schema
	windows [2]window.Def
	out     *schema.Schema

	filter   *expr.PredProgram // σ / WHERE; nil = accept all
	writers  []fieldWriter     // output construction; nil = identity copy
	joinPred *expr.PredProgram

	aggs      []aggSpec
	ops       []MergeOp
	groupIdx  []int // group-by field indices in the input schema
	keyLen    int
	grouped   bool
	invertApl bool              // incremental (rolling) computation applies
	having    *expr.PredProgram // over the output schema

	resultPool  sync.Pool // *TaskResult
	tablePool   sync.Pool // *HashTable
	scratchPool sync.Pool // *scratch
}

type scratch struct {
	frags   []window.Fragment
	fragsB  []window.Fragment
	prefixC []int64   // prefix counts
	prefixV []float64 // prefix sums, nAggs-strided
	prefTS  []int64   // per-tuple pass/fail timestamps
	rolling *HashTable
}

// Compile builds an executable plan from a validated query.
func Compile(q *query.Query) (*Plan, error) {
	if q.OutputSchema() == nil {
		if err := q.Validate(); err != nil {
			return nil, err
		}
	}
	p := &Plan{Q: q, out: q.OutputSchema()}
	for i, in := range q.Inputs {
		p.in[i] = in.Schema
		p.windows[i] = in.Window
	}
	res := q.Resolver()

	var err error
	if q.Where != nil {
		if p.filter, err = expr.CompilePred(q.Where, res); err != nil {
			return nil, err
		}
	}

	switch {
	case q.UDF != nil:
		p.Kind = UDFOp
		if q.IsJoin() && p.windows[0].Kind != p.windows[1].Kind {
			return nil, fmt.Errorf("exec: two-input UDF windows must have the same kind")
		}
	case q.IsJoin():
		p.Kind = Join
		if p.windows[0].Kind != p.windows[1].Kind {
			return nil, fmt.Errorf("exec: join windows must have the same kind")
		}
		if p.joinPred, err = expr.CompilePred(q.JoinPred, res); err != nil {
			return nil, err
		}
		if err := p.compileWriters(res); err != nil {
			return nil, err
		}
	case q.IsAggregation() || q.Distinct:
		p.Kind = Aggregate
		if err := p.compileAggregation(res); err != nil {
			return nil, err
		}
	default:
		p.Kind = Map
		if err := p.compileWriters(res); err != nil {
			return nil, err
		}
	}

	if q.Having != nil {
		p.having, err = expr.CompilePred(q.Having, expr.SingleResolver{Schema: p.out})
		if err != nil {
			return nil, err
		}
	}

	p.resultPool.New = func() any { return &TaskResult{} }
	p.tablePool.New = func() any {
		return NewHashTable(p.keyLen, len(p.aggs), 64)
	}
	p.scratchPool.New = func() any { return &scratch{} }
	return p, nil
}

// compileWriters builds the output tuple constructors for Map and Join
// plans. An empty projection is the identity (select *): for Map a whole-
// tuple copy, for Join the concatenation of both sides.
func (p *Plan) compileWriters(res expr.Resolver) error {
	if len(p.Q.Projection) == 0 {
		p.writers = nil
		return nil
	}
	out := p.out
	for i, item := range p.Q.Projection {
		w := fieldWriter{outIdx: i}
		if c, ok := item.Expr.(expr.Column); ok {
			side, fi, s, err := res.Resolve(c)
			if err != nil {
				return err
			}
			if s.Field(fi).Type == out.Field(i).Type {
				w.src = side
				w.srcOff = s.Offset(fi)
				w.size = s.Field(fi).Type.Size()
				p.writers = append(p.writers, w)
				continue
			}
		}
		prog, err := expr.CompileNum(item.Expr, res)
		if err != nil {
			return err
		}
		w.prog = prog
		p.writers = append(p.writers, w)
	}
	return nil
}

func (p *Plan) compileAggregation(res expr.Resolver) error {
	in := p.in[0]
	if p.Q.Distinct {
		// DISTINCT groups on every non-timestamp projected column; the
		// output tuples are the group keys themselves, prefixed by the
		// group's max timestamp — so the first projected column must be
		// the timestamp.
		if p.out.NumFields() < 2 || p.out.Field(0).Name != "timestamp" || p.out.Field(0).Type != schema.Int64 {
			return fmt.Errorf("exec: distinct queries must project timestamp first")
		}
		p.grouped = true
		p.invertApl = true
		for _, item := range p.Q.Projection {
			c, ok := item.Expr.(expr.Column)
			if !ok {
				return fmt.Errorf("exec: distinct supports plain column projections only")
			}
			if c.Name == "timestamp" {
				continue
			}
			fi := in.IndexOf(c.Name)
			if fi < 0 {
				return fmt.Errorf("exec: unknown distinct column %q", c.Name)
			}
			p.groupIdx = append(p.groupIdx, fi)
			p.keyLen += in.Field(fi).Type.Size()
		}
		if p.keyLen == 0 {
			return fmt.Errorf("exec: distinct needs at least one non-timestamp column")
		}
		return nil
	}

	for _, g := range p.Q.GroupBy {
		_, fi, s, err := res.Resolve(g)
		if err != nil {
			return err
		}
		p.groupIdx = append(p.groupIdx, fi)
		p.keyLen += s.Field(fi).Type.Size()
	}
	p.grouped = len(p.groupIdx) > 0

	p.invertApl = true
	outOff := 1 + len(p.groupIdx) // timestamp + group columns precede aggs
	for i, a := range p.Q.Aggregates {
		spec := aggSpec{fn: a.Func, outF: outOff + i}
		switch a.Func {
		case query.Count, query.Sum, query.Avg:
			spec.op = OpAdd
		case query.Min:
			spec.op = OpMin
			p.invertApl = false
		case query.Max:
			spec.op = OpMax
			p.invertApl = false
		}
		if a.Arg != nil {
			prog, err := expr.CompileNum(a.Arg, res)
			if err != nil {
				return err
			}
			spec.arg = prog
		}
		p.aggs = append(p.aggs, spec)
		p.ops = append(p.ops, spec.op)
	}
	return nil
}

// InputSchema returns the schema of input i.
func (p *Plan) InputSchema(i int) *schema.Schema { return p.in[i] }

// OutputSchema returns the result schema.
func (p *Plan) OutputSchema() *schema.Schema { return p.out }

// Window returns the window definition of input i.
func (p *Plan) Window(i int) window.Def { return p.windows[i] }

// NumInputs returns 1 or 2.
func (p *Plan) NumInputs() int { return len(p.Q.Inputs) }

// RStream reports whether the plan emits per-window results (aggregations
// and joins) rather than a per-tuple transformed stream.
func (p *Plan) RStream() bool { return p.Kind != Map }

// NewResult fetches a pooled TaskResult.
func (p *Plan) NewResult() *TaskResult {
	r := p.resultPool.Get().(*TaskResult)
	r.Reset()
	return r
}

// ReleaseResult returns a TaskResult and any tables it references to the
// plan's pools.
func (p *Plan) ReleaseResult(r *TaskResult) {
	for i := range r.Partials {
		if t := r.Partials[i].Table; t != nil {
			p.releaseTable(t)
			r.Partials[i].Table = nil
		}
	}
	r.Reset()
	p.resultPool.Put(r)
}

func (p *Plan) newTable() *HashTable {
	t := p.tablePool.Get().(*HashTable)
	t.Reset()
	return t
}

func (p *Plan) releaseTable(t *HashTable) { p.tablePool.Put(t) }

func (p *Plan) getScratch() *scratch  { return p.scratchPool.Get().(*scratch) }
func (p *Plan) putScratch(s *scratch) { p.scratchPool.Put(s) }

// Process evaluates the batch operator function over one task's batches,
// appending results to res. It is the CPU execution path (paper §5.3); the
// GPGPU path in internal/gpu produces bit-compatible results.
func (p *Plan) Process(in [2]Batch, res *TaskResult) error {
	switch p.Kind {
	case Map:
		p.processMap(in[0], res)
	case Aggregate:
		p.processAggregate(in[0], res)
	case Join:
		p.processJoin(in, res)
	case UDFOp:
		p.processUDF(in, res)
	}
	return nil
}

// writeOut appends the output tuple for the given input tuple(s).
func (p *Plan) writeOut(dst []byte, l, r []byte) []byte {
	if p.writers == nil {
		dst = append(dst, l...)
		return append(dst, r...)
	}
	base := len(dst)
	dst = append(dst, make([]byte, p.out.TupleSize())...)
	tuple := dst[base:]
	for _, w := range p.writers {
		if w.size > 0 {
			src := l
			if w.src == 1 {
				src = r
			}
			copy(tuple[p.out.Offset(w.outIdx):p.out.Offset(w.outIdx)+w.size], src[w.srcOff:w.srcOff+w.size])
			continue
		}
		if w.prog.IsInt() {
			v := w.prog.EvalInt(l, r)
			switch p.out.Field(w.outIdx).Type {
			case schema.Int32:
				p.out.WriteInt32(tuple, w.outIdx, int32(v))
			case schema.Int64:
				p.out.WriteInt64(tuple, w.outIdx, v)
			default:
				p.out.WriteFloat(tuple, w.outIdx, float64(v))
			}
		} else {
			p.out.WriteFloat(tuple, w.outIdx, w.prog.EvalFloat(l, r))
		}
	}
	return dst
}

// minInt64 is the MaxTS seed.
const minInt64 = math.MinInt64
