package exec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

// Kind classifies a compiled plan by its execution strategy.
type Kind uint8

// Plan kinds.
const (
	// Map covers projection and selection: stateless per-tuple transforms
	// with IStream semantics; windows do not affect the output.
	Map Kind = iota
	// Aggregate covers windowed aggregation, GROUP BY, HAVING and
	// DISTINCT, with RStream semantics.
	Aggregate
	// Join covers the windowed θ-join, with RStream semantics.
	Join
	// UDFOp covers user-defined operator functions, with RStream
	// semantics over opaque partials.
	UDFOp
)

// String names the kind.
func (k Kind) String() string {
	return [...]string{"map", "aggregate", "join", "udf"}[k]
}

type aggSpec struct {
	fn   query.AggFunc
	arg  *expr.NumProgram // nil for count
	op   MergeOp
	outF int // output schema field index
}

type fieldWriter struct {
	// Byte-forwarding path: copy size bytes from srcOff of the tuple on
	// side src. size == 0 selects the computed path. srcField is the
	// source schema field index, used to pick the column segment when the
	// batch carries columnar views.
	src      int
	srcOff   int
	srcField int
	size     int
	// Computed path.
	prog   *expr.NumProgram
	outIdx int
	// Precomputed output location (outOff = out.Offset(outIdx)).
	outOff int
	outTyp schema.Type
}

// Plan is a compiled query: the batch operator function (Process), the
// assembly operator function (Merge/Finalize), and the metadata the engine
// needs to route data. Plans are safe for concurrent Process calls.
type Plan struct {
	Q    *query.Query
	Kind Kind

	in      [2]*schema.Schema
	windows [2]window.Def
	out     *schema.Schema

	filter   *expr.PredProgram // σ / WHERE; nil = accept all
	writers  []fieldWriter     // output construction; nil = identity copy
	joinPred *expr.PredProgram

	aggs      []aggSpec
	ops       []MergeOp
	groupIdx  []int // group-by field indices in the input schema
	keyLen    int
	grouped   bool
	invertApl bool              // incremental (rolling) computation applies
	having    *expr.PredProgram // over the output schema

	// vec selects the vectorized batch operators; the per-tuple scalar
	// path stays behind SetVectorized(false) as the reference
	// implementation for differential tests and ablation.
	vec bool

	// colOffs/colW describe each input schema's columnar layout (field
	// byte offsets within the row tuple, and field widths), precomputed so
	// batch evaluation can attach Batch.Cols views without per-task work.
	colOffs [2][]int32
	colW    [2][]int
	// eqJoin, when ok, is the bucketed fast path for equality join
	// predicates on integer columns.
	eqJoin eqJoinInfo

	resultPool  sync.Pool // *TaskResult
	tablePool   sync.Pool // *HashTable
	scratchPool sync.Pool // *scratch
}

// eqJoinInfo locates the integer key columns of an equality join
// conjunct, one per side.
type eqJoinInfo struct {
	ok         bool
	aOff, bOff int
	aTyp, bTyp schema.Type
}

type scratch struct {
	frags   []window.Fragment
	fragsB  []window.Fragment
	prefixC []int64   // prefix counts
	prefixV []float64 // prefix sums, nAggs-strided
	rolling *HashTable

	// Vectorized-path scratch: the register columns behind batch
	// evaluation, the selection vectors, and the per-batch value columns.
	// All are owned by one Process call at a time via the scratch pool.
	vec  expr.VecScratch
	sel  []int32   // filter selection vector
	selJ []int32   // join inner-pass selection vector
	cols []float64 // aggregate argument columns, col-major (arg a at [a*n:(a+1)*n])
	icol []int64   // computed projection column (integer programs)
	fcol []float64 // computed projection column (float programs)

	// keyBuf is the grouped-aggregation key assembly buffer; pooled here
	// so the four grouped paths stop allocating one per task.
	keyBuf []byte
	// colsBuf holds per-range column view headers for FilterSelect.
	colsBuf [][]byte

	// Join scratch: reused fragment pairing and equality buckets.
	pairs  []JoinPair
	eqHead map[int64]int32
	eqNext []int32
}

// defaultVec is the package-wide default for newly compiled plans.
var defaultVec atomic.Bool

func init() { defaultVec.Store(true) }

// SetDefaultVectorized toggles whether newly compiled plans use the
// vectorized batch operators (the default) or the per-tuple scalar
// reference path. Exposed for end-to-end differential tests and
// ablation runs; existing plans are unaffected.
func SetDefaultVectorized(on bool) { defaultVec.Store(on) }

// DefaultVectorized reports the current compile-time default.
func DefaultVectorized() bool { return defaultVec.Load() }

// SetVectorized switches this plan between the vectorized operators and
// the scalar reference path. Not safe to call concurrently with Process.
func (p *Plan) SetVectorized(on bool) { p.vec = on }

// Vectorized reports which path the plan runs.
func (p *Plan) Vectorized() bool { return p.vec }

// Compile builds an executable plan from a validated query.
func Compile(q *query.Query) (*Plan, error) {
	if q.OutputSchema() == nil {
		if err := q.Validate(); err != nil {
			return nil, err
		}
	}
	p := &Plan{Q: q, out: q.OutputSchema(), vec: DefaultVectorized()}
	for i, in := range q.Inputs {
		p.in[i] = in.Schema
		p.windows[i] = in.Window
		for f := 0; f < in.Schema.NumFields(); f++ {
			p.colOffs[i] = append(p.colOffs[i], int32(in.Schema.Offset(f)))
			p.colW[i] = append(p.colW[i], in.Schema.Field(f).Type.Size())
		}
	}
	res := q.Resolver()

	var err error
	if q.Where != nil {
		if p.filter, err = expr.CompilePred(q.Where, res); err != nil {
			return nil, err
		}
	}

	switch {
	case q.UDF != nil:
		p.Kind = UDFOp
		if q.IsJoin() && p.windows[0].Kind != p.windows[1].Kind {
			return nil, fmt.Errorf("exec: two-input UDF windows must have the same kind")
		}
	case q.IsJoin():
		p.Kind = Join
		if p.windows[0].Kind != p.windows[1].Kind {
			return nil, fmt.Errorf("exec: join windows must have the same kind")
		}
		if p.joinPred, err = expr.CompilePred(q.JoinPred, res); err != nil {
			return nil, err
		}
		p.eqJoin = detectEquiJoin(q.JoinPred, res)
		if err := p.compileWriters(res); err != nil {
			return nil, err
		}
	case q.IsAggregation() || q.Distinct:
		p.Kind = Aggregate
		if err := p.compileAggregation(res); err != nil {
			return nil, err
		}
	default:
		p.Kind = Map
		if err := p.compileWriters(res); err != nil {
			return nil, err
		}
	}

	if q.Having != nil {
		p.having, err = expr.CompilePred(q.Having, expr.SingleResolver{Schema: p.out})
		if err != nil {
			return nil, err
		}
	}

	p.resultPool.New = func() any { return &TaskResult{} }
	p.tablePool.New = func() any {
		return NewHashTable(p.keyLen, len(p.aggs), 64)
	}
	p.scratchPool.New = func() any { return &scratch{} }
	return p, nil
}

// compileWriters builds the output tuple constructors for Map and Join
// plans. An empty projection is the identity (select *): for Map a whole-
// tuple copy, for Join the concatenation of both sides.
func (p *Plan) compileWriters(res expr.Resolver) error {
	if len(p.Q.Projection) == 0 {
		p.writers = nil
		return nil
	}
	out := p.out
	for i, item := range p.Q.Projection {
		w := fieldWriter{outIdx: i, outOff: out.Offset(i), outTyp: out.Field(i).Type}
		if c, ok := item.Expr.(expr.Column); ok {
			side, fi, s, err := res.Resolve(c)
			if err != nil {
				return err
			}
			if s.Field(fi).Type == out.Field(i).Type {
				w.src = side
				w.srcOff = s.Offset(fi)
				w.srcField = fi
				w.size = s.Field(fi).Type.Size()
				p.writers = append(p.writers, w)
				continue
			}
		}
		prog, err := expr.CompileNum(item.Expr, res)
		if err != nil {
			return err
		}
		w.prog = prog
		p.writers = append(p.writers, w)
	}
	return nil
}

// detectEquiJoin looks for an equality conjunct over integer columns on
// opposite sides of the join predicate — either the predicate itself or
// any top-level AND conjunct. Such a conjunct lets joinCross bucket the
// right fragment by key instead of testing every pair; the remaining
// conjuncts are applied to the (few) key-equal candidates.
func detectEquiJoin(pred expr.Pred, res expr.Resolver) eqJoinInfo {
	var conjuncts []expr.Pred
	switch v := pred.(type) {
	case expr.Cmp:
		conjuncts = []expr.Pred{v}
	case expr.And:
		conjuncts = v.Preds
	default:
		return eqJoinInfo{}
	}
	for _, c := range conjuncts {
		cmp, ok := c.(expr.Cmp)
		if !ok || cmp.Op != expr.Eq {
			continue
		}
		lc, lok := cmp.Left.(expr.Column)
		rc, rok := cmp.Right.(expr.Column)
		if !lok || !rok {
			continue
		}
		lSide, lf, ls, err := res.Resolve(lc)
		if err != nil {
			continue
		}
		rSide, rf, rs, err := res.Resolve(rc)
		if err != nil || lSide == rSide {
			continue
		}
		lTyp, rTyp := ls.Field(lf).Type, rs.Field(rf).Type
		isInt := func(t schema.Type) bool { return t == schema.Int32 || t == schema.Int64 }
		if !isInt(lTyp) || !isInt(rTyp) {
			continue // float equality keeps scalar compare semantics (NaN)
		}
		info := eqJoinInfo{ok: true}
		if lSide == 0 {
			info.aOff, info.aTyp = ls.Offset(lf), lTyp
			info.bOff, info.bTyp = rs.Offset(rf), rTyp
		} else {
			info.aOff, info.aTyp = rs.Offset(rf), rTyp
			info.bOff, info.bTyp = ls.Offset(lf), lTyp
		}
		return info
	}
	return eqJoinInfo{}
}

// readIntKey reads an integer column as a sign-extended int64 — the
// integer-compare domain both scalar and vectorized equality use.
func readIntKey(tuple []byte, off int, typ schema.Type) int64 {
	if typ == schema.Int32 {
		return int64(int32(binary.LittleEndian.Uint32(tuple[off:])))
	}
	return int64(binary.LittleEndian.Uint64(tuple[off:]))
}

func (p *Plan) compileAggregation(res expr.Resolver) error {
	in := p.in[0]
	if p.Q.Distinct {
		// DISTINCT groups on every non-timestamp projected column; the
		// output tuples are the group keys themselves, prefixed by the
		// group's max timestamp — so the first projected column must be
		// the timestamp.
		if p.out.NumFields() < 2 || p.out.Field(0).Name != "timestamp" || p.out.Field(0).Type != schema.Int64 {
			return fmt.Errorf("exec: distinct queries must project timestamp first")
		}
		p.grouped = true
		p.invertApl = true
		for _, item := range p.Q.Projection {
			c, ok := item.Expr.(expr.Column)
			if !ok {
				return fmt.Errorf("exec: distinct supports plain column projections only")
			}
			if c.Name == "timestamp" {
				continue
			}
			fi := in.IndexOf(c.Name)
			if fi < 0 {
				return fmt.Errorf("exec: unknown distinct column %q", c.Name)
			}
			p.groupIdx = append(p.groupIdx, fi)
			p.keyLen += in.Field(fi).Type.Size()
		}
		if p.keyLen == 0 {
			return fmt.Errorf("exec: distinct needs at least one non-timestamp column")
		}
		return nil
	}

	for _, g := range p.Q.GroupBy {
		_, fi, s, err := res.Resolve(g)
		if err != nil {
			return err
		}
		p.groupIdx = append(p.groupIdx, fi)
		p.keyLen += s.Field(fi).Type.Size()
	}
	p.grouped = len(p.groupIdx) > 0

	p.invertApl = true
	outOff := 1 + len(p.groupIdx) // timestamp + group columns precede aggs
	for i, a := range p.Q.Aggregates {
		spec := aggSpec{fn: a.Func, outF: outOff + i}
		switch a.Func {
		case query.Count, query.Sum, query.Avg:
			spec.op = OpAdd
		case query.Min:
			spec.op = OpMin
			p.invertApl = false
		case query.Max:
			spec.op = OpMax
			p.invertApl = false
		}
		if a.Arg != nil {
			prog, err := expr.CompileNum(a.Arg, res)
			if err != nil {
				return err
			}
			spec.arg = prog
		}
		p.aggs = append(p.aggs, spec)
		p.ops = append(p.ops, spec.op)
	}
	return nil
}

// InputSchema returns the schema of input i.
func (p *Plan) InputSchema(i int) *schema.Schema { return p.in[i] }

// OutputSchema returns the result schema.
func (p *Plan) OutputSchema() *schema.Schema { return p.out }

// Window returns the window definition of input i.
func (p *Plan) Window(i int) window.Def { return p.windows[i] }

// NumInputs returns 1 or 2.
func (p *Plan) NumInputs() int { return len(p.Q.Inputs) }

// RStream reports whether the plan emits per-window results (aggregations
// and joins) rather than a per-tuple transformed stream.
func (p *Plan) RStream() bool { return p.Kind != Map }

// NewResult fetches a pooled TaskResult.
func (p *Plan) NewResult() *TaskResult {
	r := p.resultPool.Get().(*TaskResult)
	r.Reset()
	return r
}

// ReleaseResult returns a TaskResult and any tables it references to the
// plan's pools.
func (p *Plan) ReleaseResult(r *TaskResult) {
	for i := range r.Partials {
		if t := r.Partials[i].Table; t != nil {
			p.releaseTable(t)
			r.Partials[i].Table = nil
		}
	}
	r.Reset()
	p.resultPool.Put(r)
}

func (p *Plan) newTable() *HashTable {
	t := p.tablePool.Get().(*HashTable)
	t.Reset()
	return t
}

func (p *Plan) releaseTable(t *HashTable) { p.tablePool.Put(t) }

func (p *Plan) getScratch() *scratch  { return p.scratchPool.Get().(*scratch) }
func (p *Plan) putScratch(s *scratch) { p.scratchPool.Put(s) }

// Process evaluates the batch operator function over one task's batches,
// appending results to res. It is the CPU execution path (paper §5.3); the
// GPGPU path in internal/gpu produces bit-compatible results.
func (p *Plan) Process(in [2]Batch, res *TaskResult) error {
	switch p.Kind {
	case Map:
		p.processMap(in[0], res)
	case Aggregate:
		p.processAggregate(in[0], res)
	case Join:
		p.processJoin(in, res)
	case UDFOp:
		p.processUDF(in, res)
	}
	return nil
}

// writeOut appends the output tuple for the given input tuple(s).
func (p *Plan) writeOut(dst []byte, l, r []byte) []byte {
	if p.writers == nil {
		dst = append(dst, l...)
		return append(dst, r...)
	}
	base := len(dst)
	dst = append(dst, make([]byte, p.out.TupleSize())...)
	tuple := dst[base:]
	for _, w := range p.writers {
		if w.size > 0 {
			src := l
			if w.src == 1 {
				src = r
			}
			copy(tuple[w.outOff:w.outOff+w.size], src[w.srcOff:w.srcOff+w.size])
			continue
		}
		if w.prog.IsInt() {
			v := w.prog.EvalInt(l, r)
			switch w.outTyp {
			case schema.Int32:
				p.out.WriteInt32(tuple, w.outIdx, int32(v))
			case schema.Int64:
				p.out.WriteInt64(tuple, w.outIdx, v)
			default:
				p.out.WriteFloat(tuple, w.outIdx, float64(v))
			}
		} else {
			p.out.WriteFloat(tuple, w.outIdx, w.prog.EvalFloat(l, r))
		}
	}
	return dst
}

// batchInput builds the vectorized-evaluation view of a single-input
// batch, attaching the columnar segments when the engine provided them.
// Identity projections are the exception: their output is a run-coalesced
// copy of the row bytes, so the whole row batch is streamed regardless —
// evaluating the filter from the rows too warms the copy's source instead
// of splitting the working set across both layouts. (The GPU's RowFreeMap
// gate excludes identity projections for the same reason.)
func (p *Plan) batchInput(in Batch, tsz, n int) expr.BatchInput {
	bi := expr.BatchInput{L: in.Data, LStride: tsz, N: n}
	if in.Cols != nil && !(p.Kind == Map && p.writers == nil && in.Data != nil) {
		bi.LCols, bi.LColOffs = in.Cols, p.colOffs[0]
	}
	return bi
}

// filterSel batch-evaluates the WHERE predicate over a packed batch into
// the scratch selection vector. all=true (and a nil vector) means the
// plan has no filter and every row passes.
func (p *Plan) filterSel(sc *scratch, in Batch, tsz, n int) (sel []int32, all bool) {
	if p.filter == nil {
		return nil, true
	}
	sc.sel = p.filter.EvalBatch(&sc.vec, sc.sel, p.batchInput(in, tsz, n))
	return sc.sel, false
}

// identitySel materialises the all-rows selection vector; the grouped
// aggregation paths use it so filtered and unfiltered batches share one
// code path.
func (sc *scratch) identitySel(n int) []int32 {
	if cap(sc.sel) < n {
		sc.sel = make([]int32, n)
	}
	sc.sel = sc.sel[:n]
	for i := range sc.sel {
		sc.sel[i] = int32(i)
	}
	return sc.sel
}

// writeOutBatch appends the output tuples for the selected rows of a
// packed batch: the compact half of select-then-compact. Identity
// projections become run-coalesced copies; forwarded columns are copied
// column-at-a-time with width-specialised loops (straight from the
// columnar segments when the batch carries them); computed columns are
// batch-evaluated once into a scratch column and then stored.
func (p *Plan) writeOutBatch(dst []byte, b Batch, tsz, n int, sel []int32, all bool, sc *scratch) []byte {
	data := b.Data
	rows := len(sel)
	if all {
		rows = n
	}
	if rows == 0 {
		return dst
	}
	if p.writers == nil {
		if all {
			return append(dst, data[:n*tsz]...)
		}
		// Copy runs of consecutive selected rows in one memmove each.
		for k := 0; k < len(sel); {
			run := k + 1
			for run < len(sel) && sel[run] == sel[run-1]+1 {
				run++
			}
			lo, hi := int(sel[k]), int(sel[run-1])+1
			dst = append(dst, data[lo*tsz:hi*tsz]...)
			k = run
		}
		return dst
	}

	osz := p.out.TupleSize()
	base := len(dst)
	dst = append(dst, make([]byte, rows*osz)...)
	out := dst[base:]
	in := p.batchInput(b, tsz, n)
	for _, w := range p.writers {
		var col []byte
		if w.size > 0 && w.src == 0 && b.Cols != nil {
			col = b.Cols[w.srcField]
		}
		switch {
		case w.size == 8:
			if col != nil {
				oo := w.outOff
				if all {
					for r := 0; r < rows; r++ {
						binary.LittleEndian.PutUint64(out[oo:], binary.LittleEndian.Uint64(col[r*8:]))
						oo += osz
					}
				} else {
					for _, i := range sel {
						binary.LittleEndian.PutUint64(out[oo:], binary.LittleEndian.Uint64(col[int(i)*8:]))
						oo += osz
					}
				}
			} else if all {
				so, oo := w.srcOff, w.outOff
				for r := 0; r < rows; r++ {
					binary.LittleEndian.PutUint64(out[oo:], binary.LittleEndian.Uint64(data[so:]))
					so += tsz
					oo += osz
				}
			} else {
				oo := w.outOff
				for _, i := range sel {
					binary.LittleEndian.PutUint64(out[oo:], binary.LittleEndian.Uint64(data[int(i)*tsz+w.srcOff:]))
					oo += osz
				}
			}
		case w.size == 4:
			if col != nil {
				oo := w.outOff
				if all {
					for r := 0; r < rows; r++ {
						binary.LittleEndian.PutUint32(out[oo:], binary.LittleEndian.Uint32(col[r*4:]))
						oo += osz
					}
				} else {
					for _, i := range sel {
						binary.LittleEndian.PutUint32(out[oo:], binary.LittleEndian.Uint32(col[int(i)*4:]))
						oo += osz
					}
				}
			} else if all {
				so, oo := w.srcOff, w.outOff
				for r := 0; r < rows; r++ {
					binary.LittleEndian.PutUint32(out[oo:], binary.LittleEndian.Uint32(data[so:]))
					so += tsz
					oo += osz
				}
			} else {
				oo := w.outOff
				for _, i := range sel {
					binary.LittleEndian.PutUint32(out[oo:], binary.LittleEndian.Uint32(data[int(i)*tsz+w.srcOff:]))
					oo += osz
				}
			}
		case w.prog.IsInt():
			// One batch evaluation per column, then a typed store pass
			// with the same conversions as the scalar writeOut; the output
			// type dispatch is hoisted out of the row loop.
			sc.icol = w.prog.EvalBatchInt(&sc.vec, sc.icol, in)
			icol := sc.icol
			oo := w.outOff
			for r := 0; r < rows; r++ {
				i := r
				if !all {
					i = int(sel[r])
				}
				v := icol[i]
				switch w.outTyp {
				case schema.Int32:
					binary.LittleEndian.PutUint32(out[oo:], uint32(int32(v)))
				case schema.Int64:
					binary.LittleEndian.PutUint64(out[oo:], uint64(v))
				case schema.Float32:
					binary.LittleEndian.PutUint32(out[oo:], math.Float32bits(float32(v)))
				default:
					binary.LittleEndian.PutUint64(out[oo:], math.Float64bits(float64(v)))
				}
				oo += osz
			}
		default:
			sc.fcol = w.prog.EvalBatchFloat(&sc.vec, sc.fcol, in)
			fcol := sc.fcol
			oo := w.outOff
			switch w.outTyp {
			case schema.Int32:
				for r := 0; r < rows; r++ {
					i := r
					if !all {
						i = int(sel[r])
					}
					binary.LittleEndian.PutUint32(out[oo:], uint32(int32(fcol[i])))
					oo += osz
				}
			case schema.Int64:
				for r := 0; r < rows; r++ {
					i := r
					if !all {
						i = int(sel[r])
					}
					binary.LittleEndian.PutUint64(out[oo:], uint64(int64(fcol[i])))
					oo += osz
				}
			case schema.Float32:
				for r := 0; r < rows; r++ {
					i := r
					if !all {
						i = int(sel[r])
					}
					binary.LittleEndian.PutUint32(out[oo:], math.Float32bits(float32(fcol[i])))
					oo += osz
				}
			default:
				for r := 0; r < rows; r++ {
					i := r
					if !all {
						i = int(sel[r])
					}
					binary.LittleEndian.PutUint64(out[oo:], math.Float64bits(fcol[i]))
					oo += osz
				}
			}
		}
	}
	return dst
}

// fieldAt returns input side's schema field index whose row offset is
// off, or -1.
func (p *Plan) fieldAt(side, off int) int {
	for j, o := range p.colOffs[side] {
		if int(o) == off {
			return j
		}
	}
	return -1
}

// RowFreeMap reports whether this Map plan can execute from column
// segments of input 0 alone — the filter and every output writer read
// only fields the columnar layout carries, never the row bytes. The GPU
// uses it to DMA-stage columns with no per-task gather (and no row copy
// at all); identity projections and scalar-fallback programs keep the
// row staging path.
func (p *Plan) RowFreeMap() bool {
	if p.Kind != Map || !p.vec || p.writers == nil {
		return false
	}
	has := func(side, off int) bool { return side == 0 && p.fieldAt(0, off) >= 0 }
	if p.filter != nil && !p.filter.RowFree(has) {
		return false
	}
	for i := range p.writers {
		w := &p.writers[i]
		if w.size > 0 {
			if w.src != 0 {
				return false
			}
			continue // forwarded straight from its column segment
		}
		if !w.prog.RowFree(has) {
			return false
		}
	}
	return true
}

// ColumnsRead reports, per field of input i's schema, whether the
// compiled operators may read that field through a column segment
// (Batch.Cols) when one is attached. The engine shreds exactly these
// fields into the columnar ring; unmarked fields stay row-only and
// their Cols entries are nil — every columnar reader falls back to the
// row bytes for a nil entry, so over-approximation is safe and
// under-approximation impossible by construction (the sets below mirror
// each reader).
//
// Identity projections read no columns at all: their output is a
// run-coalesced copy of the row bytes, so both the CPU path
// (batchInput) and the GPU staging gate (RowFreeMap) pin them to the
// row layout, and shredding for them would be pure ingest overhead.
func (p *Plan) ColumnsRead(input int) []bool {
	read := make([]bool, p.in[input].NumFields())
	if p.Kind == Map && p.writers == nil {
		return read
	}
	mark := func(side, off int) {
		if side == input {
			if f := p.fieldAt(side, off); f >= 0 {
				read[f] = true
			}
		}
	}
	if p.filter != nil {
		p.filter.ColRefs(mark)
	}
	if p.joinPred != nil {
		p.joinPred.ColRefs(mark)
	}
	for i := range p.writers {
		w := &p.writers[i]
		if w.size > 0 {
			if w.src == input {
				read[w.srcField] = true
			}
			continue
		}
		w.prog.ColRefs(mark)
	}
	for a := range p.aggs {
		if p.aggs[a].arg != nil {
			p.aggs[a].arg.ColRefs(mark)
		}
	}
	if input == 0 {
		// Group keys are assembled from the row bytes today; marking them
		// keeps the set correct if key extraction ever goes columnar.
		for _, f := range p.groupIdx {
			read[f] = true
		}
	}
	if p.eqJoin.ok {
		off := p.eqJoin.aOff
		if input == 1 {
			off = p.eqJoin.bOff
		}
		if f := p.fieldAt(input, off); f >= 0 {
			read[f] = true
		}
	}
	return read
}

// growF64 returns a zero-extended float64 slice of length n, reusing
// buf's capacity and growing geometrically so the adaptive dispatcher's
// ϕ resizes don't reallocate scratch on every step up.
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		c := 2 * cap(buf)
		if c < n {
			c = n
		}
		buf = make([]float64, c)
	}
	return buf[:n]
}

// growI64 is growF64 for int64 scratch.
func growI64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		c := 2 * cap(buf)
		if c < n {
			c = n
		}
		buf = make([]int64, c)
	}
	return buf[:n]
}

// minInt64 is the MaxTS seed.
const minInt64 = math.MinInt64
