package exec

import (
	"testing"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/window"
)

// Steady-state allocation tests for the aggregate paths: the per-task
// float/int argument columns, prefix arrays, and the grouped key buffer
// all live in the plan's scratch pool, so repeated Process calls over
// same-sized batches must not allocate per tuple or per group. A small
// fixed budget absorbs pool jitter (sync.Pool may miss under the race
// detector) and result-fragment bookkeeping.

func allocQuery(kind string) *query.Query {
	switch kind {
	case "grouped-rolling", "grouped-direct":
		return query.NewBuilder(kind).
			From("S", synSchema, window.NewCount(512, 64)).
			Aggregate(query.Sum, expr.Col("a"), "s").
			Aggregate(query.Count, nil, "n").
			GroupBy("b").
			MustBuild()
	case "scalar-prefix":
		return query.NewBuilder(kind).
			From("S", synSchema, window.NewCount(512, 64)).
			Aggregate(query.Sum, expr.Col("a"), "s").
			Aggregate(query.Avg, expr.Col("c"), "m").
			MustBuild()
	case "scalar-direct":
		return query.NewBuilder(kind).
			From("S", synSchema, window.NewCount(512, 64)).
			Aggregate(query.Min, expr.Col("a"), "lo").
			Aggregate(query.Max, expr.Col("a"), "hi").
			MustBuild()
	}
	panic("unknown kind " + kind)
}

func steadyStateAllocs(tb testing.TB, kind string, vec bool) float64 {
	tb.Helper()
	p, err := Compile(allocQuery(kind))
	if err != nil {
		tb.Fatal(err)
	}
	p.SetVectorized(vec)
	if kind == "grouped-direct" {
		p.SetIncremental(false)
	}
	in := [2]Batch{{Data: genStream(4096, 9), Ctx: window.Context{PrevTimestamp: window.NoPrev}}}
	res := p.NewResult()
	run := func() {
		res.Reset()
		if err := p.Process(in, res); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ { // warm the scratch pool and result capacity
		run()
	}
	return testing.AllocsPerRun(20, run)
}

func TestAggregateSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	for _, kind := range []string{"grouped-rolling", "grouped-direct", "scalar-prefix", "scalar-direct"} {
		for _, vec := range []bool{false, true} {
			name := kind
			if vec {
				name += "/vec"
			} else {
				name += "/scalar"
			}
			t.Run(name, func(t *testing.T) {
				got := steadyStateAllocs(t, kind, vec)
				// 4096 tuples, 64 windows per batch. Scalar partials draw
				// their accumulators from the result's arena, so those
				// paths must be (near) zero. Grouped partials each carry a
				// snapshot hash table whose ownership transfers to the
				// assembler — inherently a few allocations per window —
				// so their budget is per-window; a regression to per-tuple
				// work (4096+) or per-group scratch still trips it.
				budget := 48.0
				if kind == "grouped-rolling" || kind == "grouped-direct" {
					budget = 64 * 10
				}
				if got > budget {
					t.Errorf("%s: %.0f allocs/op, budget %.0f — a per-task scratch buffer is not pooled", name, got, budget)
				}
			})
		}
	}
}

// BenchmarkAggAllocs reports allocs/op for the aggregate paths; the CI
// bench artifacts track the vectorized grouped path at (near) zero.
func BenchmarkAggAllocs(b *testing.B) {
	for _, kind := range []string{"grouped-rolling", "scalar-prefix"} {
		b.Run(kind, func(b *testing.B) {
			p, err := Compile(allocQuery(kind))
			if err != nil {
				b.Fatal(err)
			}
			p.SetVectorized(true)
			in := [2]Batch{{Data: genStream(4096, 9), Ctx: window.Context{PrevTimestamp: window.NoPrev}}}
			res := p.NewResult()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res.Reset()
				if err := p.Process(in, res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
