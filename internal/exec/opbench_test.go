package exec

import (
	"testing"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/window"
)

// Operator microbenchmarks comparing the vectorized batch kernels against
// the per-tuple scalar reference. Each sub-benchmark processes one batch
// per iteration; b.SetBytes makes `go test -bench` report MB/s, and
// tuples/s = bytes/s ÷ 32.

const benchTuples = 4096

func benchPlan(b *testing.B, q *query.Query, vec bool) *Plan {
	b.Helper()
	p, err := Compile(q)
	if err != nil {
		b.Fatal(err)
	}
	p.SetVectorized(vec)
	return p
}

func benchProcess(b *testing.B, q *query.Query, streams [2][]byte) {
	b.Helper()
	for _, mode := range []struct {
		name string
		vec  bool
	}{{"scalar", false}, {"vectorized", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := benchPlan(b, q, mode.vec)
			var in [2]Batch
			total := 0
			for i := 0; i < p.NumInputs(); i++ {
				in[i] = Batch{Data: streams[i], Ctx: window.Context{PrevTimestamp: window.NoPrev}}
				total += len(streams[i])
			}
			res := p.NewResult()
			b.SetBytes(int64(total))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res.Reset()
				if err := p.Process(in, res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOpSelection(b *testing.B) {
	q := query.NewBuilder("sel").
		From("S", synSchema, window.NewCount(1024, 1024)).
		Where(expr.And{Preds: []expr.Pred{
			expr.Cmp{Op: expr.Lt, Left: expr.Col("b"), Right: expr.IntConst(6)},
			expr.Cmp{Op: expr.Ge, Left: expr.Col("a"), Right: expr.FloatConst(10)},
		}}).
		MustBuild()
	benchProcess(b, q, [2][]byte{genStream(benchTuples, 1), nil})
}

func BenchmarkOpProjection(b *testing.B) {
	q := query.NewBuilder("proj").
		From("S", synSchema, window.NewCount(1024, 1024)).
		Select("timestamp", "b", "c").
		SelectAs(expr.Arith{Op: expr.Mul, Left: expr.Col("a"), Right: expr.FloatConst(3)}, "a3").
		MustBuild()
	benchProcess(b, q, [2][]byte{genStream(benchTuples, 2), nil})
}

func BenchmarkOpAggScalarPrefix(b *testing.B) {
	q := query.NewBuilder("agg").
		From("S", synSchema, window.NewCount(512, 64)).
		Aggregate(query.Sum, expr.Col("a"), "s").
		Aggregate(query.Count, nil, "n").
		Aggregate(query.Avg, expr.Col("c"), "m").
		MustBuild()
	benchProcess(b, q, [2][]byte{genStream(benchTuples, 3), nil})
}

func BenchmarkOpAggScalarDirect(b *testing.B) {
	q := query.NewBuilder("mm").
		From("S", synSchema, window.NewCount(512, 64)).
		Aggregate(query.Min, expr.Col("a"), "lo").
		Aggregate(query.Max, expr.Col("a"), "hi").
		MustBuild()
	benchProcess(b, q, [2][]byte{genStream(benchTuples, 4), nil})
}

func BenchmarkOpAggGroupedRolling(b *testing.B) {
	q := query.NewBuilder("grp").
		From("S", synSchema, window.NewCount(512, 64)).
		Aggregate(query.Sum, expr.Col("a"), "s").
		Aggregate(query.Count, nil, "n").
		GroupBy("b").
		MustBuild()
	benchProcess(b, q, [2][]byte{genStream(benchTuples, 5), nil})
}

func BenchmarkOpJoinEqui(b *testing.B) {
	w := window.NewCount(256, 256)
	q := query.NewBuilder("jeq").
		FromAs("L", "L", leftSchema, w).
		FromAs("R", "R", rightSchema, w).
		Join(expr.Cmp{Op: expr.Eq, Left: expr.Col("v"), Right: expr.Col("w")}).
		MustBuild()
	l, r := genPair(1024, 64)
	benchProcess(b, q, [2][]byte{l, r})
}

func BenchmarkOpJoinTheta(b *testing.B) {
	w := window.NewCount(128, 128)
	q := query.NewBuilder("jth").
		FromAs("L", "L", leftSchema, w).
		FromAs("R", "R", rightSchema, w).
		Join(expr.Cmp{Op: expr.Lt, Left: expr.Col("v"), Right: expr.Col("w")}).
		MustBuild()
	l, r := genPair(1024, 256)
	benchProcess(b, q, [2][]byte{l, r})
}
