package exec

// processMap runs projection/selection over a batch. These operators are
// stateless and use IStream semantics, so the window definition does not
// influence the output (which is why Fig. 11a is flat): the batch operator
// function is a single scan, and assembly is concatenation in task order.
func (p *Plan) processMap(in Batch, res *TaskResult) {
	s := p.in[0]
	ts := s.TupleSize()
	n := len(in.Data) / ts
	for i := 0; i < n; i++ {
		tuple := in.Data[i*ts : (i+1)*ts]
		if p.filter != nil && !p.filter.EvalTuple(tuple) {
			continue
		}
		res.Stream = p.writeOut(res.Stream, tuple, nil)
	}
}
