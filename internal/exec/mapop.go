package exec

// processMap runs projection/selection over a batch. These operators are
// stateless and use IStream semantics, so the window definition does not
// influence the output (which is why Fig. 11a is flat).
//
// The vectorized path mirrors the GPU's two-pass count+compact kernel
// (§5.4): a batch predicate evaluation fills the selection vector, then
// writeOutBatch compacts the selected rows column-at-a-time. The scalar
// per-tuple loop remains the reference implementation.
func (p *Plan) processMap(in Batch, res *TaskResult) {
	if !p.vec {
		p.processMapScalar(in, res)
		return
	}
	s := p.in[0]
	tsz := s.TupleSize()
	n := len(in.Data) / tsz
	if n == 0 {
		return
	}
	sc := p.getScratch()
	sel, all := p.filterSel(sc, in, tsz, n)
	res.Stream = p.writeOutBatch(res.Stream, in, tsz, n, sel, all, sc)
	p.putScratch(sc)
}

// processMapScalar is the per-tuple reference path (SetVectorized(false)).
func (p *Plan) processMapScalar(in Batch, res *TaskResult) {
	s := p.in[0]
	ts := s.TupleSize()
	n := len(in.Data) / ts
	for i := 0; i < n; i++ {
		tuple := in.Data[i*ts : (i+1)*ts]
		if p.filter != nil && !p.filter.EvalTuple(tuple) {
			continue
		}
		res.Stream = p.writeOut(res.Stream, tuple, nil)
	}
}
