package exec

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/window"
)

// These tests pin the vectorized CPU path to the per-tuple scalar path:
// both plans process the same batch sequence and every TaskResult must be
// byte-identical — Stream bytes, partial flags, counts, accumulator bits,
// join payloads, and group-table contents.

// tableSnapshot renders a group table as sorted "key→count/vals/ts" lines
// so two tables compare as sets of groups (iteration order is layout-
// dependent and not part of the contract).
func tableSnapshot(h *HashTable, nAggs int) []string {
	if h == nil {
		return nil
	}
	var rows []string
	h.Range(func(sl Slot) {
		row := fmt.Sprintf("%x c=%d ts=%d", sl.Key(), sl.Count(), sl.MaxTS())
		for a := 0; a < nAggs; a++ {
			row += fmt.Sprintf(" v%d=%016x", a, math.Float64bits(sl.Val(a)))
		}
		rows = append(rows, row)
	})
	sort.Strings(rows)
	return rows
}

func comparePartial(t *testing.T, task int, k int, got, want *WindowPartial, nAggs int) {
	t.Helper()
	fail := func(field string, g, w interface{}) {
		t.Fatalf("task %d partial %d: %s = %v, scalar has %v", task, k, field, g, w)
	}
	if got.Window != want.Window {
		fail("Window", got.Window, want.Window)
	}
	if got.OpenedHere != want.OpenedHere || got.ClosedHere != want.ClosedHere {
		fail("Opened/ClosedHere",
			[2]bool{got.OpenedHere, got.ClosedHere}, [2]bool{want.OpenedHere, want.ClosedHere})
	}
	if got.ClosedSides != want.ClosedSides {
		fail("ClosedSides", got.ClosedSides, want.ClosedSides)
	}
	if got.Count != want.Count {
		fail("Count", got.Count, want.Count)
	}
	if got.MaxTS != want.MaxTS {
		fail("MaxTS", got.MaxTS, want.MaxTS)
	}
	if len(got.Vals) != len(want.Vals) {
		fail("len(Vals)", len(got.Vals), len(want.Vals))
	}
	for a := range got.Vals {
		if math.Float64bits(got.Vals[a]) != math.Float64bits(want.Vals[a]) {
			fail(fmt.Sprintf("Vals[%d] bits", a),
				math.Float64bits(got.Vals[a]), math.Float64bits(want.Vals[a]))
		}
	}
	if string(got.Data) != string(want.Data) {
		fail("Data", len(got.Data), len(want.Data))
	}
	if string(got.AData) != string(want.AData) {
		fail("AData", len(got.AData), len(want.AData))
	}
	if string(got.BData) != string(want.BData) {
		fail("BData", len(got.BData), len(want.BData))
	}
	gt, wt := tableSnapshot(got.Table, nAggs), tableSnapshot(want.Table, nAggs)
	if len(gt) != len(wt) {
		fail("table groups", len(gt), len(wt))
	}
	for i := range gt {
		if gt[i] != wt[i] {
			fail("table group", gt[i], wt[i])
		}
	}
}

// runDifferential processes streams through a vectorized and a scalar
// compilation of the same query, comparing every TaskResult and the final
// assembled output.
func runDifferential(t *testing.T, q *query.Query, streams [2][]byte, batchTuples int) {
	t.Helper()
	pv := mustCompile(t, q)
	ps := mustCompile(t, q)
	pv.SetVectorized(true)
	ps.SetVectorized(false)

	asmV, asmS := NewAssembler(pv), NewAssembler(ps)
	var outV, outS []byte
	var pos [2]int
	var prevTS [2]int64
	prevTS[0], prevTS[1] = window.NoPrev, window.NoPrev

	more := func() bool {
		for i := 0; i < pv.NumInputs(); i++ {
			if pos[i]*pv.InputSchema(i).TupleSize() < len(streams[i]) {
				return true
			}
		}
		return false
	}
	task := 0
	for more() {
		var in [2]Batch
		for i := 0; i < pv.NumInputs(); i++ {
			s := pv.InputSchema(i)
			tsz := s.TupleSize()
			total := len(streams[i]) / tsz
			n := batchTuples
			if pos[i]+n > total {
				n = total - pos[i]
			}
			if n < 0 {
				n = 0
			}
			data := streams[i][pos[i]*tsz : (pos[i]+n)*tsz]
			in[i] = Batch{Data: data, Ctx: window.Context{
				FirstIndex:    int64(pos[i]),
				PrevTimestamp: prevTS[i],
			}}
			if n > 0 {
				prevTS[i] = s.Timestamp(data[(n-1)*tsz:])
			}
			pos[i] += n
		}
		resV, resS := pv.NewResult(), ps.NewResult()
		if err := pv.Process(in, resV); err != nil {
			t.Fatalf("vec Process: %v", err)
		}
		if err := ps.Process(in, resS); err != nil {
			t.Fatalf("scalar Process: %v", err)
		}
		if string(resV.Stream) != string(resS.Stream) {
			t.Fatalf("task %d: Stream differs (%d vs %d bytes)", task, len(resV.Stream), len(resS.Stream))
		}
		if len(resV.Partials) != len(resS.Partials) {
			t.Fatalf("task %d: %d partials, scalar has %d", task, len(resV.Partials), len(resS.Partials))
		}
		for k := range resV.Partials {
			comparePartial(t, task, k, &resV.Partials[k], &resS.Partials[k], pv.NumAggs())
		}
		outV = asmV.Drain(resV, outV)
		outS = asmS.Drain(resS, outS)
		pv.ReleaseResult(resV)
		ps.ReleaseResult(resS)
		task++
	}
	outV, outS = asmV.Flush(outV), asmS.Flush(outS)
	if string(outV) != string(outS) {
		t.Fatalf("assembled output differs (%d vs %d bytes)", len(outV), len(outS))
	}
	if len(outV) == 0 {
		t.Fatal("differential test degenerate: no output produced")
	}
}

func TestDiffMapSelectProject(t *testing.T) {
	// AND-of-compares filter (fused leaves) plus computed and forwarded
	// output columns.
	q := query.NewBuilder("dmap").
		From("S", synSchema, window.NewCount(8, 8)).
		Where(expr.And{Preds: []expr.Pred{
			expr.Cmp{Op: expr.Lt, Left: expr.Col("b"), Right: expr.IntConst(6)},
			expr.Cmp{Op: expr.Ge, Left: expr.Col("a"), Right: expr.FloatConst(10)},
		}}).
		Select("timestamp", "b").
		SelectAs(expr.Arith{Op: expr.Mul, Left: expr.Col("a"), Right: expr.FloatConst(3)}, "a3").
		SelectAs(expr.Arith{Op: expr.Mod, Left: expr.Col("e"), Right: expr.IntConst(7)}, "e7").
		MustBuild()
	stream := genStream(500, 11)
	for _, bt := range []int{3, 64, 500} {
		runDifferential(t, q, [2][]byte{stream, nil}, bt)
	}
}

func TestDiffMapGeneralPredicate(t *testing.T) {
	// Column-vs-column and OR predicates don't flatten to fused leaves;
	// they exercise the lowered batch program.
	q := query.NewBuilder("dmap2").
		From("S", synSchema, window.NewCount(8, 8)).
		Where(expr.Or{Preds: []expr.Pred{
			expr.Cmp{Op: expr.Gt, Left: expr.Col("b"), Right: expr.Col("d")},
			expr.Not{P: expr.Cmp{Op: expr.Le, Left: expr.Col("c"), Right: expr.IntConst(50)}},
		}}).
		MustBuild()
	stream := genStream(400, 12)
	runDifferential(t, q, [2][]byte{stream, nil}, 37)
}

func TestDiffAggScalarPrefix(t *testing.T) {
	q := query.NewBuilder("dpre").
		From("S", synSchema, window.NewCount(32, 5)).
		Where(expr.Cmp{Op: expr.Ne, Left: expr.Col("d"), Right: expr.IntConst(0)}).
		Aggregate(query.Sum, expr.Col("a"), "s").
		Aggregate(query.Count, nil, "n").
		Aggregate(query.Avg, expr.Col("c"), "m").
		MustBuild()
	stream := genStream(600, 13)
	for _, bt := range []int{9, 100} {
		runDifferential(t, q, [2][]byte{stream, nil}, bt)
	}
}

func TestDiffAggScalarDirect(t *testing.T) {
	q := query.NewBuilder("ddir").
		From("S", synSchema, window.NewTime(20, 7)).
		Where(expr.Cmp{Op: expr.Lt, Left: expr.Col("b"), Right: expr.IntConst(5)}).
		Aggregate(query.Min, expr.Col("a"), "lo").
		Aggregate(query.Max, expr.Arith{Op: expr.Add, Left: expr.Col("a"), Right: expr.Col("c")}, "hi").
		Aggregate(query.Sum, expr.Col("c"), "s").
		MustBuild()
	stream := genStream(600, 14)
	runDifferential(t, q, [2][]byte{stream, nil}, 53)
}

func TestDiffAggGroupedRolling(t *testing.T) {
	q := query.NewBuilder("droll").
		From("S", synSchema, window.NewCount(24, 3)).
		Where(expr.Cmp{Op: expr.Gt, Left: expr.Col("c"), Right: expr.IntConst(20)}).
		Aggregate(query.Sum, expr.Col("a"), "s").
		Aggregate(query.Count, nil, "n").
		GroupBy("b", "d").
		MustBuild()
	stream := genStream(600, 15)
	for _, bt := range []int{8, 71} {
		runDifferential(t, q, [2][]byte{stream, nil}, bt)
	}
}

func TestDiffAggGroupedDirect(t *testing.T) {
	q := query.NewBuilder("dgdir").
		From("S", synSchema, window.NewCount(16, 4)).
		Where(expr.Cmp{Op: expr.Lt, Left: expr.Col("c"), Right: expr.IntConst(80)}).
		Aggregate(query.Max, expr.Col("a"), "hi").
		Aggregate(query.Sum, expr.Col("c"), "s").
		GroupBy("b").
		MustBuild()
	stream := genStream(500, 16)
	runDifferential(t, q, [2][]byte{stream, nil}, 45)
}

func TestDiffJoinEqui(t *testing.T) {
	w := window.NewCount(16, 16)
	q := query.NewBuilder("deq").
		FromAs("L", "L", leftSchema, w).
		FromAs("R", "R", rightSchema, w).
		Join(expr.Cmp{Op: expr.Eq, Left: expr.Col("v"), Right: expr.Col("w")}).
		MustBuild()
	p := mustCompile(t, q)
	if !p.eqJoin.ok {
		t.Fatal("equality join not detected")
	}
	l, r := genPair(128, 5)
	for _, bt := range []int{8, 32} { // windows spanning batches and not
		runDifferential(t, q, [2][]byte{l, r}, bt)
	}
}

func TestDiffJoinEquiWithResidual(t *testing.T) {
	// Equality conjunct plus a residual θ-conjunct: the bucketed path must
	// still apply the full predicate.
	w := window.NewCount(16, 8)
	q := query.NewBuilder("deqr").
		FromAs("L", "L", leftSchema, w).
		FromAs("R", "R", rightSchema, w).
		Join(expr.And{Preds: []expr.Pred{
			expr.Cmp{Op: expr.Eq, Left: expr.Col("v"), Right: expr.Col("w")},
			expr.Cmp{Op: expr.Lt, Left: expr.QCol("L", "timestamp"), Right: expr.QCol("R", "timestamp")},
		}}).
		MustBuild()
	p := mustCompile(t, q)
	if !p.eqJoin.ok {
		t.Fatal("equality conjunct not detected")
	}
	l, r := genPair(96, 4)
	runDifferential(t, q, [2][]byte{l, r}, 24)
}

func TestDiffJoinTheta(t *testing.T) {
	w := window.NewCount(8, 8)
	q := query.NewBuilder("dth").
		FromAs("L", "L", leftSchema, w).
		FromAs("R", "R", rightSchema, w).
		Join(expr.Cmp{Op: expr.Lt, Left: expr.Col("v"), Right: expr.Col("w")}).
		MustBuild()
	p := mustCompile(t, q)
	if p.eqJoin.ok {
		t.Fatal("θ-join must not take the equality path")
	}
	l, r := genPair(96, 6)
	runDifferential(t, q, [2][]byte{l, r}, 20)
}
