package exec

import (
	"saber/internal/schema"
	"saber/internal/window"
)

// Batch is one input stream's slice of data for a query task: a contiguous
// run of serialised tuples plus the O(1) stream-position context the
// dispatcher captured when it cut the batch (paper §4.1). All window
// computation over the batch happens inside the task, in parallel.
type Batch struct {
	// Data holds packed fixed-width tuples.
	Data []byte
	// Cols, when non-nil, additionally exposes the same tuples as
	// per-field contiguous column segments: Cols[j] holds the bytes of
	// input-schema field j for every tuple of the batch, packed with
	// stride == the field's width (the columnar ring layout). Vectorized
	// kernels prefer these dense views over the strided row walk; Data
	// stays authoritative for row-residual paths (group keys, identity
	// projection, the scalar reference operators).
	Cols [][]byte
	// Ctx is the stream position of the batch.
	Ctx window.Context
}

// Tuples returns the number of tuples given the stream's tuple size.
func (b Batch) Tuples(tupleSize int) int { return len(b.Data) / tupleSize }

// tsView adapts a packed batch to window.Timestamps.
type tsView struct {
	s    *schema.Schema
	data []byte
	n    int
}

func newTSView(s *schema.Schema, data []byte) tsView {
	return tsView{s: s, data: data, n: len(data) / s.TupleSize()}
}

func (v tsView) Len() int { return v.n }

func (v tsView) At(i int) int64 { return v.s.Timestamp(v.data[i*v.s.TupleSize():]) }

// WindowPartial is the window fragment result a task produces for one
// window (paper §3, f_f output). Its payload depends on the operator class:
//
//   - IStream operators (π, σ) bypass partials entirely — their output is
//     TaskResult.Stream.
//   - Aggregations carry either scalar accumulators (Count/Vals/MaxTS) or a
//     group hash table (Table).
//   - Joins carry the result tuples joined so far (Data) plus the window's
//     raw input seen so far on each side (AData/BData) so that cross-task
//     tuple pairs can be joined during assembly.
type WindowPartial struct {
	// Window is the window index k.
	Window int64
	// OpenedHere/ClosedHere mirror the fragment flags; for joins they are
	// the conjunction across both inputs.
	OpenedHere, ClosedHere bool

	// Scalar aggregation payload.
	Count int64
	Vals  []float64
	MaxTS int64

	// Grouped aggregation payload.
	Table *HashTable

	// Join payload.
	Data         []byte
	AData, BData []byte
	// ClosedSides tracks per-input close state: a join window may close
	// on its two inputs in different tasks.
	ClosedSides [2]bool
}

// TaskResult is the output of the batch operator function for one task.
type TaskResult struct {
	// Stream is the IStream output for π/σ tasks: transformed tuples in
	// input order. Assembly for these operators is pure concatenation in
	// task order.
	Stream []byte
	// Partials holds RStream window fragment results in window order.
	Partials []WindowPartial
	// FreeTo, per input, is the absolute ring-buffer offset up to which
	// the input data is no longer needed once this result is consumed.
	// Managed by the engine, carried here for the result stage.
	FreeTo [2]int64

	// valsArena backs the Vals slices of scalar-aggregation partials so
	// per-fragment accumulator allocation is amortised across the
	// result's pooled lifetime. Consumers that keep a partial beyond the
	// result (the assembler's pending map) must copy Vals out.
	valsArena []float64
}

// AllocVals carves a zeroed m-wide accumulator slice out of the result's
// arena. The slice is valid until the result is reset or released.
func (r *TaskResult) AllocVals(m int) []float64 {
	if m == 0 {
		return nil
	}
	if cap(r.valsArena)-len(r.valsArena) < m {
		// Start a fresh chunk; slices handed out earlier keep the old
		// chunk alive through their partials.
		c := 2 * cap(r.valsArena)
		if c < 64 {
			c = 64
		}
		if c < m {
			c = m
		}
		r.valsArena = make([]float64, 0, c)
	}
	base := len(r.valsArena)
	r.valsArena = r.valsArena[:base+m]
	// Cap the handed-out slice at its own end so a consumer's append
	// cannot clobber the next fragment's accumulators — but leave the
	// arena's capacity intact, or every later call starts a fresh chunk.
	vals := r.valsArena[base : base+m : base+m]
	for i := range vals {
		vals[i] = 0
	}
	return vals
}

// Reset clears the result for reuse, retaining allocated capacity.
func (r *TaskResult) Reset() {
	r.Stream = r.Stream[:0]
	r.Partials = r.Partials[:0]
	r.FreeTo = [2]int64{}
	r.valsArena = r.valsArena[:0]
}
