package exec

import (
	"math"
	"math/rand"
	"testing"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

// synSchema mirrors the paper's synthetic 32-byte tuple: a 64-bit
// timestamp and six 32-bit values, the first a float.
var synSchema = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "a", Type: schema.Float32},
	schema.Field{Name: "b", Type: schema.Int32},
	schema.Field{Name: "c", Type: schema.Int32},
	schema.Field{Name: "d", Type: schema.Int32},
	schema.Field{Name: "e", Type: schema.Int32},
	schema.Field{Name: "f", Type: schema.Int32},
)

// genStream builds n synthetic tuples with timestamps 0..n-1 and small
// attribute domains (to force group collisions).
func genStream(n int, seed int64) []byte {
	rnd := rand.New(rand.NewSource(seed))
	b := schema.NewTupleBuilder(synSchema, n)
	for i := 0; i < n; i++ {
		b.Begin().
			Timestamp(int64(i)).
			Float32("a", float32(rnd.Intn(1000))/10).
			Int32("b", int32(rnd.Intn(8))).
			Int32("c", int32(rnd.Intn(100))).
			Int32("d", int32(rnd.Intn(4))).
			Int32("e", rnd.Int31()).
			Int32("f", int32(i))
		_ = i
	}
	return b.Bytes()
}

// runPlan executes a plan over the stream split into batches of batchTuples
// tuples, draining results in task order and flushing open windows.
func runPlan(t *testing.T, p *Plan, stream []byte, batchTuples int) []byte {
	t.Helper()
	return runPlanStreams(t, p, [2][]byte{stream, nil}, batchTuples)
}

func runPlanStreams(t *testing.T, p *Plan, streams [2][]byte, batchTuples int) []byte {
	t.Helper()
	asm := NewAssembler(p)
	var out []byte
	var pos [2]int
	var prevTS [2]int64
	prevTS[0], prevTS[1] = window.NoPrev, window.NoPrev

	more := func() bool {
		for i := 0; i < p.NumInputs(); i++ {
			if pos[i]*p.InputSchema(i).TupleSize() < len(streams[i]) {
				return true
			}
		}
		return false
	}
	for more() {
		var in [2]Batch
		for i := 0; i < p.NumInputs(); i++ {
			s := p.InputSchema(i)
			tsz := s.TupleSize()
			total := len(streams[i]) / tsz
			n := batchTuples
			if pos[i]+n > total {
				n = total - pos[i]
			}
			if n < 0 {
				n = 0
			}
			data := streams[i][pos[i]*tsz : (pos[i]+n)*tsz]
			in[i] = Batch{Data: data, Ctx: window.Context{
				FirstIndex:    int64(pos[i]),
				PrevTimestamp: prevTS[i],
			}}
			if n > 0 {
				prevTS[i] = s.Timestamp(data[(n-1)*tsz:])
			}
			pos[i] += n
		}
		res := p.NewResult()
		if err := p.Process(in, res); err != nil {
			t.Fatalf("Process: %v", err)
		}
		out = asm.Drain(res, out)
		p.ReleaseResult(res)
	}
	return asm.Flush(out)
}

func TestMapIdentity(t *testing.T) {
	q := query.NewBuilder("id").
		From("S", synSchema, window.NewCount(4, 4)).
		MustBuild()
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != Map || p.RStream() {
		t.Fatalf("kind = %v", p.Kind)
	}
	stream := genStream(100, 1)
	for _, bt := range []int{1, 7, 100} {
		got := runPlan(t, p, stream, bt)
		if string(got) != string(stream) {
			t.Fatalf("identity output differs at batch size %d", bt)
		}
	}
}

func TestSelection(t *testing.T) {
	q := query.NewBuilder("sel").
		From("S", synSchema, window.NewCount(4, 2)).
		Where(expr.Cmp{Op: expr.Lt, Left: expr.Col("b"), Right: expr.IntConst(4)}).
		MustBuild()
	p, _ := Compile(q)
	stream := genStream(500, 2)
	got := runPlan(t, p, stream, 64)

	tsz := synSchema.TupleSize()
	var want []byte
	for i := 0; i+tsz <= len(stream); i += tsz {
		if synSchema.ReadInt32(stream[i:i+tsz], 2) < 4 {
			want = append(want, stream[i:i+tsz]...)
		}
	}
	if string(got) != string(want) {
		t.Fatalf("selection output: got %d bytes, want %d", len(got), len(want))
	}
}

func TestProjectionByteForwardingAndCompute(t *testing.T) {
	q := query.NewBuilder("proj").
		From("S", synSchema, window.NewUnbounded()).
		Select("timestamp", "b").
		SelectAs(expr.Arith{Op: expr.Div, Left: expr.Col("c"), Right: expr.IntConst(10)}, "cDiv").
		SelectAs(expr.Arith{Op: expr.Mul, Left: expr.Col("a"), Right: expr.FloatConst(2)}, "a2").
		MustBuild()
	p, _ := Compile(q)
	out := p.OutputSchema()
	if out.NumFields() != 4 {
		t.Fatalf("out schema = %s", out)
	}
	stream := genStream(50, 3)
	got := runPlan(t, p, stream, 8)
	osz := out.TupleSize()
	if len(got) != 50*osz {
		t.Fatalf("output size = %d", len(got))
	}
	tsz := synSchema.TupleSize()
	for i := 0; i < 50; i++ {
		in := stream[i*tsz : (i+1)*tsz]
		o := got[i*osz : (i+1)*osz]
		if out.Timestamp(o) != synSchema.Timestamp(in) {
			t.Fatalf("tuple %d ts", i)
		}
		if out.ReadInt32(o, 1) != synSchema.ReadInt32(in, 2) {
			t.Fatalf("tuple %d b copy", i)
		}
		if out.ReadInt(o, 2) != int64(synSchema.ReadInt32(in, 3)/10) {
			t.Fatalf("tuple %d cDiv: %d vs %d", i, out.ReadInt(o, 2), synSchema.ReadInt32(in, 3)/10)
		}
		wantA2 := float64(synSchema.ReadFloat32(in, 1)) * 2
		if math.Abs(out.ReadFloat(o, 3)-wantA2) > 1e-6 {
			t.Fatalf("tuple %d a2", i)
		}
	}
}

// refScalarAgg computes the expected per-window scalar aggregates naively.
type refRow struct {
	cnt             int64
	sum, minV, maxV float64
	maxTS           int64
}

func refWindows(t *testing.T, stream []byte, w window.Def, filter func([]byte) bool, arg func([]byte) float64) map[int64]*refRow {
	t.Helper()
	tsz := synSchema.TupleSize()
	n := len(stream) / tsz
	out := map[int64]*refRow{}
	add := func(k int64, tuple []byte, ts int64) {
		r := out[k]
		if r == nil {
			r = &refRow{minV: math.Inf(1), maxV: math.Inf(-1), maxTS: math.MinInt64}
			out[k] = r
		}
		if ts > r.maxTS {
			r.maxTS = ts
		}
		if filter != nil && !filter(tuple) {
			return
		}
		r.cnt++
		v := arg(tuple)
		r.sum += v
		if v < r.minV {
			r.minV = v
		}
		if v > r.maxV {
			r.maxV = v
		}
	}
	for i := 0; i < n; i++ {
		tuple := stream[i*tsz : (i+1)*tsz]
		ts := synSchema.Timestamp(tuple)
		switch w.Kind {
		case window.Count:
			for k := int64(0); w.Start(k) <= int64(i); k++ {
				if int64(i) < w.End(k) {
					add(k, tuple, ts)
				}
			}
		case window.Time:
			for k := int64(0); w.Start(k) <= ts; k++ {
				if ts < w.End(k) {
					add(k, tuple, ts)
				}
			}
		}
	}
	return out
}

func TestScalarAggSlidingCount(t *testing.T) {
	for _, batch := range []int{5, 16, 37, 1000} {
		w := window.NewCount(10, 3)
		q := query.NewBuilder("agg").
			From("S", synSchema, w).
			Aggregate(query.Sum, expr.Col("a"), "s").
			Aggregate(query.Count, nil, "n").
			Aggregate(query.Avg, expr.Col("a"), "m").
			MustBuild()
		p, _ := Compile(q)
		if !p.invertApl {
			t.Fatal("prefix path not selected")
		}
		stream := genStream(200, 4)
		got := runPlan(t, p, stream, batch)
		ref := refWindows(t, stream, w, nil, func(tu []byte) float64 {
			return float64(synSchema.ReadFloat32(tu, 1))
		})

		out := p.OutputSchema()
		osz := out.TupleSize()
		nRows := len(got) / osz
		// Every window with ≥1 tuple yields a row, in window order.
		var wantRows int64
		for range ref {
			wantRows++
		}
		if int64(nRows) != wantRows {
			t.Fatalf("batch %d: rows = %d, want %d", batch, nRows, wantRows)
		}
		prevTS := int64(-1)
		for r := 0; r < nRows; r++ {
			row := got[r*osz : (r+1)*osz]
			k := int64(r) // windows dense from 0 for this stream
			want := ref[k]
			if want == nil {
				t.Fatalf("unexpected row %d", r)
			}
			if got := out.ReadInt(row, 2); got != want.cnt {
				t.Fatalf("batch %d window %d count = %d, want %d", batch, k, got, want.cnt)
			}
			if got := out.ReadFloat(row, 1); math.Abs(got-want.sum) > 1e-3 {
				t.Fatalf("batch %d window %d sum = %g, want %g", batch, k, got, want.sum)
			}
			if got := out.ReadFloat(row, 3); math.Abs(got-want.sum/float64(want.cnt)) > 1e-3 {
				t.Fatalf("batch %d window %d avg mismatch", batch, k)
			}
			ts := out.Timestamp(row)
			if ts < prevTS {
				t.Fatalf("row timestamps regress: %d after %d", ts, prevTS)
			}
			prevTS = ts
		}
	}
}

func TestScalarAggMinMaxDirectPath(t *testing.T) {
	w := window.NewCount(8, 4)
	q := query.NewBuilder("mm").
		From("S", synSchema, w).
		Aggregate(query.Min, expr.Col("a"), "lo").
		Aggregate(query.Max, expr.Col("a"), "hi").
		MustBuild()
	p, _ := Compile(q)
	if p.invertApl {
		t.Fatal("min/max must disable the prefix path")
	}
	stream := genStream(100, 5)
	got := runPlan(t, p, stream, 13)
	ref := refWindows(t, stream, w, nil, func(tu []byte) float64 {
		return float64(synSchema.ReadFloat32(tu, 1))
	})
	out := p.OutputSchema()
	osz := out.TupleSize()
	for r := 0; r*osz < len(got); r++ {
		row := got[r*osz : (r+1)*osz]
		k := int64(r)
		if math.Abs(out.ReadFloat(row, 1)-ref[k].minV) > 1e-4 ||
			math.Abs(out.ReadFloat(row, 2)-ref[k].maxV) > 1e-4 {
			t.Fatalf("window %d min/max mismatch", k)
		}
	}
}

func TestScalarAggWithFilter(t *testing.T) {
	w := window.NewTime(20, 5)
	filter := expr.Cmp{Op: expr.Eq, Left: expr.Col("d"), Right: expr.IntConst(1)}
	q := query.NewBuilder("fagg").
		From("S", synSchema, w).
		Where(filter).
		Aggregate(query.Count, nil, "n").
		MustBuild()
	p, _ := Compile(q)
	stream := genStream(300, 6)
	got := runPlan(t, p, stream, 41)
	ref := refWindows(t, stream, w,
		func(tu []byte) bool { return synSchema.ReadInt32(tu, 4) == 1 },
		func(tu []byte) float64 { return 0 })

	out := p.OutputSchema()
	osz := out.TupleSize()
	rows := map[int64]int64{}
	// Map rows back to windows via position: collect counts in order and
	// compare against ref windows (non-empty ones) in window order.
	var ks []int64
	for k, r := range ref {
		if r.cnt > 0 {
			ks = append(ks, k)
		}
	}
	if len(got)/osz != len(ks) {
		t.Fatalf("rows = %d, want %d", len(got)/osz, len(ks))
	}
	for r := 0; r*osz < len(got); r++ {
		rows[int64(r)] = out.ReadInt(got[r*osz:(r+1)*osz], 1)
	}
	// Window order equals emission order; sort ks.
	for i := 0; i < len(ks); i++ {
		for j := i + 1; j < len(ks); j++ {
			if ks[j] < ks[i] {
				ks[i], ks[j] = ks[j], ks[i]
			}
		}
	}
	for i, k := range ks {
		if rows[int64(i)] != ref[k].cnt {
			t.Fatalf("window %d count = %d, want %d", k, rows[int64(i)], ref[k].cnt)
		}
	}
}
