package exec

// Assembler drives the assembly operator function over a query's task
// results. The result stage feeds it task results strictly in query-task
// order; it accumulates window partials across tasks, finalises windows as
// they close, and appends completed output-stream bytes.
//
// An Assembler is owned by the (serialised) result stage of one query and
// is not safe for concurrent use — the paper's result stage likewise
// serialises assembly per query via the control buffer (§4.3).
type Assembler struct {
	p       *Plan
	pending map[int64]*WindowPartial
}

// NewAssembler creates an assembler for a plan.
func NewAssembler(p *Plan) *Assembler {
	return &Assembler{p: p, pending: make(map[int64]*WindowPartial)}
}

// Pending returns the number of windows awaiting more fragments.
func (a *Assembler) Pending() int { return len(a.pending) }

// Drain consumes one task's result and appends any output-stream bytes
// that became complete. The caller may release res afterwards; Drain
// steals any resources it needs to keep.
func (a *Assembler) Drain(res *TaskResult, dst []byte) []byte {
	if a.p.Kind == Map {
		// IStream: concatenation in task order is the whole assembly.
		return append(dst, res.Stream...)
	}
	for i := range res.Partials {
		part := &res.Partials[i]
		acc, ok := a.pending[part.Window]
		if !ok {
			if part.ClosedHere {
				// Complete in this task: finalise without buffering.
				dst = a.p.Finalize(part, dst)
				continue
			}
			moved := *part
			// Steal the table so releasing res does not recycle it, and
			// copy Vals out of the result's arena, which releasing res
			// reuses.
			part.Table = nil
			moved.Vals = append([]float64(nil), moved.Vals...)
			a.pending[part.Window] = &moved
			continue
		}
		a.p.Merge(acc, part)
		if acc.ClosedHere {
			dst = a.p.Finalize(acc, dst)
			delete(a.pending, part.Window)
		}
	}
	return dst
}

// Flush finalises every still-open window, in window order, as if the
// stream had ended. Used at engine shutdown so tail windows are not lost.
func (a *Assembler) Flush(dst []byte) []byte {
	for len(a.pending) > 0 {
		min := int64(1<<63 - 1)
		for k := range a.pending {
			if k < min {
				min = k
			}
		}
		dst = a.p.Finalize(a.pending[min], dst)
		delete(a.pending, min)
	}
	return dst
}
