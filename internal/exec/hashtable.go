// Package exec implements SABER's CPU operator functions (paper §5.3): for
// each relational operator, the batch operator function evaluated inside a
// query task, and the assembly operator function that combines window
// fragment results into window results.
package exec

import (
	"bytes"
	"fmt"
	"math"
)

// HashTable is the open-addressing, linear-probing group-by table used by
// both the CPU and the (simulated) GPGPU aggregation operators. Per the
// paper (§5.4), the table layout and hash function are identical on both
// processors, so a partial table produced on one can be merged with one
// produced on the other.
//
// The table uses struct-of-arrays storage backed by flat slices, which is
// the Go rendition of the paper's byte-array-backed tables: no per-group
// allocation, trivially poolable, and the state words are plain int32s the
// GPGPU kernels can CAS on.
type HashTable struct {
	keyLen int // group key width in bytes
	nAggs  int // accumulators per group
	cap    int // slot count, power of two
	used   int

	state  []int32   // 0 = empty, 1 = occupied
	keys   []byte    // cap * keyLen
	counts []int64   // tuples per group
	vals   []float64 // cap * nAggs accumulator values
	maxTS  []int64   // max contributing timestamp per group
}

// NewHashTable creates a table for keys of keyLen bytes with nAggs
// accumulator values per group and room for at least capacity groups.
func NewHashTable(keyLen, nAggs, capacity int) *HashTable {
	c := 16
	for c < capacity*2 { // keep load factor below 1/2
		c <<= 1
	}
	return &HashTable{
		keyLen: keyLen,
		nAggs:  nAggs,
		cap:    c,
		state:  make([]int32, c),
		keys:   make([]byte, c*keyLen),
		counts: make([]int64, c),
		vals:   make([]float64, c*nAggs),
		maxTS:  make([]int64, c),
	}
}

// Len returns the number of occupied groups.
func (h *HashTable) Len() int { return h.used }

// Cap returns the slot count.
func (h *HashTable) Cap() int { return h.cap }

// KeyLen returns the group key width in bytes.
func (h *HashTable) KeyLen() int { return h.keyLen }

// NumAggs returns the number of accumulators per group.
func (h *HashTable) NumAggs() int { return h.nAggs }

// Reset empties the table, retaining capacity.
func (h *HashTable) Reset() {
	if h.used == 0 {
		return
	}
	for i := range h.state {
		h.state[i] = 0
	}
	h.used = 0
}

// Hash is the shared hash function: FNV-1a over the key bytes. Exported so
// the GPGPU kernel uses bit-identical slot placement.
func Hash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// slotFor finds the slot holding key, or the empty slot where it belongs.
// Returns the slot index and whether the key was found.
func (h *HashTable) slotFor(key []byte) (int, bool) {
	mask := h.cap - 1
	i := int(Hash(key)) & mask
	for {
		if h.state[i] == 0 {
			return i, false
		}
		if bytes.Equal(h.keys[i*h.keyLen:(i+1)*h.keyLen], key) {
			return i, true
		}
		i = (i + 1) & mask
	}
}

// Slot provides update access to one group's accumulators.
type Slot struct {
	h *HashTable
	i int
}

// Count returns the group's tuple count.
func (s Slot) Count() int64 { return s.h.counts[s.i] }

// Val returns accumulator a.
func (s Slot) Val(a int) float64 { return s.h.vals[s.i*s.h.nAggs+a] }

// SetVal sets accumulator a.
func (s Slot) SetVal(a int, v float64) { s.h.vals[s.i*s.h.nAggs+a] = v }

// AddVal adds to accumulator a.
func (s Slot) AddVal(a int, v float64) { s.h.vals[s.i*s.h.nAggs+a] += v }

// MinVal lowers accumulator a to v if smaller.
func (s Slot) MinVal(a int, v float64) {
	if v < s.Val(a) {
		s.SetVal(a, v)
	}
}

// MaxVal raises accumulator a to v if larger.
func (s Slot) MaxVal(a int, v float64) {
	if v > s.Val(a) {
		s.SetVal(a, v)
	}
}

// AddCount adds to the group's tuple count.
func (s Slot) AddCount(n int64) { s.h.counts[s.i] += n }

// ObserveTS raises the group's max timestamp.
func (s Slot) ObserveTS(ts int64) {
	if ts > s.h.maxTS[s.i] {
		s.h.maxTS[s.i] = ts
	}
}

// MaxTS returns the group's max contributing timestamp.
func (s Slot) MaxTS() int64 { return s.h.maxTS[s.i] }

// Key returns the group's key bytes (aliasing table storage).
func (s Slot) Key() []byte { return s.h.keys[s.i*s.h.keyLen : (s.i+1)*s.h.keyLen] }

// Upsert returns the slot for key, inserting a fresh group if absent. Fresh
// groups have count 0 and accumulators initialised via init (which may be
// nil to zero-fill; min/max aggregates need ±Inf seeds).
func (h *HashTable) Upsert(key []byte, init func(Slot)) Slot {
	if len(key) != h.keyLen {
		panic(fmt.Sprintf("exec: key length %d, table expects %d", len(key), h.keyLen))
	}
	if h.used*2 >= h.cap {
		h.grow()
	}
	i, found := h.slotFor(key)
	s := Slot{h, i}
	if !found {
		h.state[i] = 1
		copy(h.keys[i*h.keyLen:], key)
		h.counts[i] = 0
		h.maxTS[i] = math.MinInt64
		for a := 0; a < h.nAggs; a++ {
			h.vals[i*h.nAggs+a] = 0
		}
		if init != nil {
			init(s)
		}
		h.used++
	}
	return s
}

// Lookup returns the slot for key if present.
func (h *HashTable) Lookup(key []byte) (Slot, bool) {
	i, found := h.slotFor(key)
	return Slot{h, i}, found
}

// Range calls fn for every occupied group, in unspecified order.
func (h *HashTable) Range(fn func(Slot)) {
	for i := 0; i < h.cap; i++ {
		if h.state[i] == 1 {
			fn(Slot{h, i})
		}
	}
}

func (h *HashTable) grow() {
	old := *h
	h.cap = old.cap * 2
	h.state = make([]int32, h.cap)
	h.keys = make([]byte, h.cap*h.keyLen)
	h.counts = make([]int64, h.cap)
	h.vals = make([]float64, h.cap*h.nAggs)
	h.maxTS = make([]int64, h.cap)
	h.used = 0
	for i := 0; i < old.cap; i++ {
		if old.state[i] != 1 {
			continue
		}
		key := old.keys[i*old.keyLen : (i+1)*old.keyLen]
		j, _ := h.slotFor(key)
		h.state[j] = 1
		copy(h.keys[j*h.keyLen:], key)
		h.counts[j] = old.counts[i]
		h.maxTS[j] = old.maxTS[i]
		copy(h.vals[j*h.nAggs:(j+1)*h.nAggs], old.vals[i*old.nAggs:(i+1)*old.nAggs])
		h.used++
	}
}

// MergeFrom folds every group of src into h. combine receives the
// destination slot and the source slot; it must fold counts, accumulators
// and timestamps. A nil combine applies the default: counts add, and each
// accumulator is combined with the per-accumulator op given in ops
// (OpAdd/OpMin/OpMax).
func (h *HashTable) MergeFrom(src *HashTable, ops []MergeOp) {
	if src == nil {
		return
	}
	src.Range(func(s Slot) {
		dst := h.Upsert(s.Key(), func(d Slot) {
			for a, op := range ops {
				if op != OpAdd {
					// Seed min with +Inf, max with -Inf.
					if op == OpMin {
						d.SetVal(a, math.Inf(1))
					} else {
						d.SetVal(a, math.Inf(-1))
					}
				}
			}
		})
		dst.AddCount(s.Count())
		dst.ObserveTS(s.MaxTS())
		for a, op := range ops {
			switch op {
			case OpAdd:
				dst.AddVal(a, s.Val(a))
			case OpMin:
				dst.MinVal(a, s.Val(a))
			case OpMax:
				dst.MaxVal(a, s.Val(a))
			}
		}
	})
}

// MergeOp selects how an accumulator combines across partials.
type MergeOp uint8

// Accumulator merge operations.
const (
	OpAdd MergeOp = iota
	OpMin
	OpMax
)
