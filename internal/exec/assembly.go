package exec

import (
	"math"

	"saber/internal/query"
	"saber/internal/schema"
)

// Merge is the assembly operator function's pairwise step (paper §4.3): it
// folds the next task's fragment result for a window into the accumulated
// partial for that window. Partials must be merged in query-task order;
// the result stage guarantees that by draining task results in task-id
// order. next's resources are consumed: its table (if any) is released.
func (p *Plan) Merge(acc, next *WindowPartial) {
	if (p.Kind == Join || p.Kind == UDFOp) && p.NumInputs() == 2 {
		// A two-input window closes when both inputs have passed it,
		// possibly in different tasks.
		acc.ClosedSides[0] = acc.ClosedSides[0] || next.ClosedSides[0]
		acc.ClosedSides[1] = acc.ClosedSides[1] || next.ClosedSides[1]
		acc.ClosedHere = acc.ClosedSides[0] && acc.ClosedSides[1]
	} else {
		acc.ClosedHere = acc.ClosedHere || next.ClosedHere
	}
	acc.OpenedHere = acc.OpenedHere || next.OpenedHere
	if next.MaxTS > acc.MaxTS {
		acc.MaxTS = next.MaxTS
	}
	switch p.Kind {
	case UDFOp:
		p.mergeUDF(acc, next)
		return
	case Aggregate:
		if p.grouped {
			if acc.Table == nil {
				acc.Table = next.Table
				next.Table = nil
				return
			}
			acc.Table.MergeFrom(next.Table, p.ops)
			if next.Table != nil {
				p.releaseTable(next.Table)
				next.Table = nil
			}
			return
		}
		acc.Count += next.Count
		if acc.Vals == nil {
			acc.Vals = make([]float64, len(p.aggs))
			for a, op := range p.ops {
				switch op {
				case OpMin:
					acc.Vals[a] = math.Inf(1)
				case OpMax:
					acc.Vals[a] = math.Inf(-1)
				}
			}
		}
		for a, op := range p.ops {
			switch op {
			case OpAdd:
				acc.Vals[a] += next.Vals[a]
			case OpMin:
				if next.Vals[a] < acc.Vals[a] {
					acc.Vals[a] = next.Vals[a]
				}
			case OpMax:
				if next.Vals[a] > acc.Vals[a] {
					acc.Vals[a] = next.Vals[a]
				}
			}
		}
	case Join:
		// Pairs within each side's own fragments were joined at batch
		// time; the cross-task pairs are joined here.
		acc.Data = append(acc.Data, next.Data...)
		acc.Data = p.joinCross(acc.Data, acc.AData, next.BData, nil)
		acc.Data = p.joinCross(acc.Data, next.AData, acc.BData, nil)
		if !acc.ClosedHere {
			acc.AData = append(acc.AData, next.AData...)
			acc.BData = append(acc.BData, next.BData...)
		} else {
			acc.AData, acc.BData = nil, nil
		}
	}
}

// Finalize renders a closed window's accumulated partial into output
// tuples appended to dst, applying HAVING and the stream function
// (RStream). The partial's table, if any, is released.
func (p *Plan) Finalize(part *WindowPartial, dst []byte) []byte {
	switch p.Kind {
	case UDFOp:
		return p.finalizeUDF(part, dst)
	case Join:
		return append(dst, part.Data...)
	case Aggregate:
		if p.grouped {
			dst = p.finalizeGrouped(part, dst)
			if part.Table != nil {
				p.releaseTable(part.Table)
				part.Table = nil
			}
			return dst
		}
		return p.finalizeScalar(part, dst)
	}
	return dst
}

func (p *Plan) finalizeScalar(part *WindowPartial, dst []byte) []byte {
	if part.Count == 0 {
		return dst // empty window: no row (CQL aggregate over empty input)
	}
	base := len(dst)
	dst = append(dst, make([]byte, p.out.TupleSize())...)
	tuple := dst[base:]
	p.out.SetTimestamp(tuple, part.MaxTS)
	for i, spec := range p.aggs {
		p.writeAggValue(tuple, spec, part.Vals[i], part.Count)
	}
	if p.having != nil && !p.having.EvalTuple(tuple) {
		return dst[:base]
	}
	return dst
}

func (p *Plan) finalizeGrouped(part *WindowPartial, dst []byte) []byte {
	if part.Table == nil {
		return dst
	}
	out := p.out
	osz := out.TupleSize()
	part.Table.Range(func(sl Slot) {
		if sl.Count() <= 0 {
			return
		}
		base := len(dst)
		dst = append(dst, make([]byte, osz)...)
		tuple := dst[base:]
		ts := sl.MaxTS()
		if ts == minInt64 {
			ts = part.MaxTS
		}
		out.SetTimestamp(tuple, ts)
		// Group key bytes land directly after the timestamp: the output
		// schema is [timestamp, group columns..., aggregates...] and the
		// key is the concatenation of the group column values.
		copy(tuple[out.Offset(1):out.Offset(1)+p.keyLen], sl.Key())
		for i, spec := range p.aggs {
			p.writeAggValue(tuple, spec, sl.Val(i), sl.Count())
		}
		if p.having != nil && !p.having.EvalTuple(tuple) {
			dst = dst[:base]
		}
	})
	return dst
}

func (p *Plan) writeAggValue(tuple []byte, spec aggSpec, val float64, count int64) {
	switch spec.fn {
	case query.Count:
		p.out.WriteInt64(tuple, spec.outF, count)
	case query.Avg:
		p.out.WriteFloat(tuple, spec.outF, val/float64(count))
	default:
		p.out.WriteFloat(tuple, spec.outF, val)
	}
}

// outFieldType is a small helper for tests.
func (p *Plan) outFieldType(i int) schema.Type { return p.out.Field(i).Type }
