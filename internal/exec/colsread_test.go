package exec

import (
	"testing"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/window"
)

// fieldsOf maps a ColumnsRead mask to field names for readable failures.
func fieldsOf(t *testing.T, p *Plan, input int) map[string]bool {
	t.Helper()
	read := p.ColumnsRead(input)
	s := p.InputSchema(input)
	if len(read) != s.NumFields() {
		t.Fatalf("mask has %d entries for %d fields", len(read), s.NumFields())
	}
	got := map[string]bool{}
	for f, r := range read {
		if r {
			got[s.Field(f).Name] = true
		}
	}
	return got
}

func expectFields(t *testing.T, got map[string]bool, want ...string) {
	t.Helper()
	wantSet := map[string]bool{}
	for _, w := range want {
		wantSet[w] = true
	}
	for f := range wantSet {
		if !got[f] {
			t.Errorf("field %s not marked as column-read", f)
		}
	}
	for f := range got {
		if !wantSet[f] {
			t.Errorf("field %s marked as column-read but never referenced", f)
		}
	}
}

// TestColumnsRead pins the projection-pushdown sets: the engine shreds
// exactly these fields into the columnar ring, so an under-approximation
// here would silently degrade tasks to the row path and an
// over-approximation would pay ingest shred for dead columns.
func TestColumnsRead(t *testing.T) {
	compile := func(q *query.Query) *Plan {
		p, err := Compile(q)
		if err != nil {
			t.Fatalf("compile %s: %v", q.Name, err)
		}
		return p
	}

	t.Run("identity-selection", func(t *testing.T) {
		// Identity projections stream whole rows for their output; the
		// plan attaches no columns at all (batchInput/RowFreeMap), so
		// nothing should be shredded — not even the filtered field.
		q := query.NewBuilder("sel").
			From("S", synSchema, window.NewCount(64, 64)).
			Where(expr.Cmp{Op: expr.Lt, Left: expr.Col("c"), Right: expr.IntConst(30)}).
			MustBuild()
		expectFields(t, fieldsOf(t, compile(q), 0)) // none
	})

	t.Run("projection", func(t *testing.T) {
		// Forwarded fields read their column segments; computed writers
		// and the filter read theirs through batch evaluation.
		q := query.NewBuilder("proj").
			From("S", synSchema, window.NewCount(64, 64)).
			Where(expr.Cmp{Op: expr.Lt, Left: expr.Col("c"), Right: expr.IntConst(30)}).
			Select("timestamp", "a").
			SelectAs(expr.Arith{Op: expr.Add, Left: expr.Col("d"), Right: expr.IntConst(1)}, "d1").
			MustBuild()
		expectFields(t, fieldsOf(t, compile(q), 0), "timestamp", "a", "c", "d")
	})

	t.Run("aggregation", func(t *testing.T) {
		q := query.NewBuilder("agg").
			From("S", synSchema, window.NewCount(512, 64)).
			Aggregate(query.Sum, expr.Col("a"), "sum_a").
			MustBuild()
		expectFields(t, fieldsOf(t, compile(q), 0), "a")
	})

	t.Run("grouped", func(t *testing.T) {
		q := query.NewBuilder("grouped").
			From("S", synSchema, window.NewCount(512, 64)).
			Aggregate(query.Sum, expr.Col("a"), "sum_a").
			GroupBy("b").
			MustBuild()
		expectFields(t, fieldsOf(t, compile(q), 0), "a", "b")
	})

	t.Run("join", func(t *testing.T) {
		q := query.NewBuilder("join").
			FromAs("A", "A", synSchema, window.NewCount(64, 64)).
			FromAs("B", "B", synSchema, window.NewCount(64, 64)).
			Join(expr.Cmp{Op: expr.Eq, Left: expr.QCol("A", "b"), Right: expr.QCol("B", "c")}).
			MustBuild()
		p := compile(q)
		left := fieldsOf(t, p, 0)
		right := fieldsOf(t, p, 1)
		if !left["b"] {
			t.Errorf("left key b not marked: %v", left)
		}
		if !right["c"] {
			t.Errorf("right key c not marked: %v", right)
		}
	})
}
