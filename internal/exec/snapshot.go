package exec

import "sort"

// Checkpoint support: deep copies of the assembler's cross-task window
// state. The checkpoint coordinator (internal/ckpt) serialises these
// copies outside the result stage's locks, so they must share no storage
// with the live assembler or any pooled TaskResult.

// Clone returns a deep copy of the table: same capacity and slot layout,
// no shared storage. Preserving the exact capacity keeps Range iteration
// order identical between the original and the copy.
func (h *HashTable) Clone() *HashTable {
	if h == nil {
		return nil
	}
	c := &HashTable{
		keyLen: h.keyLen,
		nAggs:  h.nAggs,
		cap:    h.cap,
		used:   h.used,
		state:  append([]int32(nil), h.state...),
		keys:   append([]byte(nil), h.keys...),
		counts: append([]int64(nil), h.counts...),
		vals:   append([]float64(nil), h.vals...),
		maxTS:  append([]int64(nil), h.maxTS...),
	}
	return c
}

// Clone returns a deep copy of the partial, safe to retain and mutate
// independently of the original (including its group table).
func (p WindowPartial) Clone() WindowPartial {
	c := p
	c.Vals = append([]float64(nil), p.Vals...)
	c.Data = append([]byte(nil), p.Data...)
	c.AData = append([]byte(nil), p.AData...)
	c.BData = append([]byte(nil), p.BData...)
	c.Table = p.Table.Clone()
	return c
}

// Export returns deep copies of every still-open window partial, sorted
// by window index. Called by the checkpoint coordinator under the result
// stage's drain lock; the copies may outlive the assembler.
func (a *Assembler) Export() []WindowPartial {
	if len(a.pending) == 0 {
		return nil
	}
	out := make([]WindowPartial, 0, len(a.pending))
	for _, p := range a.pending {
		out = append(out, p.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Window < out[j].Window })
	return out
}

// Restore replaces the assembler's pending windows with ps, taking
// ownership of the slice elements (the caller must not reuse them). Used
// when rebuilding an engine from a checkpoint; the assembler must not
// have consumed any results yet.
func (a *Assembler) Restore(ps []WindowPartial) {
	a.pending = make(map[int64]*WindowPartial, len(ps))
	for i := range ps {
		p := ps[i]
		a.pending[p.Window] = &p
	}
}
