package exec

import (
	"fmt"
	"sort"
	"testing"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

var leftSchema = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "v", Type: schema.Int32},
)

var rightSchema = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "w", Type: schema.Int32},
)

func genPair(n int, mod int32) (l, r []byte) {
	lb := schema.NewTupleBuilder(leftSchema, n)
	rb := schema.NewTupleBuilder(rightSchema, n)
	for i := 0; i < n; i++ {
		lb.Begin().Timestamp(int64(i)).Int32("v", int32(i)%mod)
		rb.Begin().Timestamp(int64(i)).Int32("w", int32(i)%mod)
	}
	return lb.Bytes(), rb.Bytes()
}

func joinPlan(t *testing.T, w window.Def, pred expr.Pred) *Plan {
	t.Helper()
	q := query.NewBuilder("join").
		FromAs("L", "L", leftSchema, w).
		FromAs("R", "R", rightSchema, w).
		Join(pred).
		MustBuild()
	return mustCompile(t, q)
}

// refJoin computes the per-window equi-join naively: for count window k
// over both streams, all pairs (i, j) with i, j in [start, end) and
// v[i] == w[j].
func refJoin(l, r []byte, w window.Def, n int) []string {
	var rows []string
	lsz, rsz := leftSchema.TupleSize(), rightSchema.TupleSize()
	for k := int64(0); w.Start(k) < int64(n); k++ {
		s, e := w.Start(k), w.End(k)
		if e > int64(n) {
			e = int64(n)
		}
		for i := s; i < e; i++ {
			for j := s; j < e; j++ {
				lv := leftSchema.ReadInt32(l[int(i)*lsz:], 1)
				rv := rightSchema.ReadInt32(r[int(j)*rsz:], 1)
				if lv == rv {
					rows = append(rows, fmt.Sprintf("k%d:%d-%d", k, i, j))
				}
			}
		}
	}
	sort.Strings(rows)
	return rows
}

// gotJoin renders join output rows as window-less pair identifiers using
// the timestamps carried through (L.timestamp, R.timestamp identify i, j).
func gotJoin(p *Plan, out []byte, w window.Def) []string {
	s := p.OutputSchema()
	osz := s.TupleSize()
	lts := s.IndexOf("timestamp")
	rts := s.IndexOf("R_timestamp")
	var rows []string
	for o := 0; o+osz <= len(out); o += osz {
		i := s.ReadInt(out[o:], lts)
		j := s.ReadInt(out[o:], rts)
		// Recover the window: both i and j lie in it; for slide==size the
		// window is i/size; for general windows a pair may belong to
		// several, so we tag with the earliest containing window.
		k := maxI64((i-w.Size+w.Slide)/w.Slide, (j-w.Size+w.Slide)/w.Slide)
		if k < 0 {
			k = 0
		}
		rows = append(rows, fmt.Sprintf("k%d:%d-%d", k, i, j))
	}
	sort.Strings(rows)
	return rows
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestJoinTumblingWithinBatch(t *testing.T) {
	w := window.NewCount(8, 8)
	p := joinPlan(t, w, expr.Cmp{Op: expr.Eq, Left: expr.Col("v"), Right: expr.Col("w")})
	l, r := genPair(64, 4)
	out := runPlanStreams(t, p, [2][]byte{l, r}, 16) // batches hold whole windows
	got := gotJoin(p, out, w)
	want := refJoin(l, r, w, 64)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %s want %s", i, got[i], want[i])
		}
	}
}

// TestJoinWindowSpansBatches: windows larger than the batch require the
// assembly stage to join cross-task pairs.
func TestJoinWindowSpansBatches(t *testing.T) {
	w := window.NewCount(16, 16)
	p := joinPlan(t, w, expr.Cmp{Op: expr.Eq, Left: expr.Col("v"), Right: expr.Col("w")})
	l, r := genPair(64, 4)
	for _, batch := range []int{3, 5, 7} {
		out := runPlanStreams(t, p, [2][]byte{l, r}, batch)
		got := gotJoin(p, out, w)
		want := refJoin(l, r, w, 64)
		if len(got) != len(want) {
			t.Fatalf("batch %d: rows = %d, want %d", batch, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("batch %d row %d: got %s want %s", batch, i, got[i], want[i])
			}
		}
	}
}

func TestJoinThetaPredicate(t *testing.T) {
	w := window.NewCount(4, 4)
	p := joinPlan(t, w, expr.Cmp{Op: expr.Lt, Left: expr.Col("v"), Right: expr.Col("w")})
	l, r := genPair(16, 100)
	out := runPlanStreams(t, p, [2][]byte{l, r}, 4)
	s := p.OutputSchema()
	osz := s.TupleSize()
	vIdx, wIdx := s.IndexOf("v"), s.IndexOf("w")
	count := 0
	for o := 0; o+osz <= len(out); o += osz {
		if s.ReadInt32(out[o:], vIdx) >= s.ReadInt32(out[o:], wIdx) {
			t.Fatal("θ predicate violated in output")
		}
		count++
	}
	// Per tumbling window of 4 with distinct values 4k..4k+3: pairs with
	// v<w: C(4,2)=6 per window, 4 windows.
	if count != 24 {
		t.Fatalf("rows = %d, want 24", count)
	}
}

func TestJoinProjectionOutput(t *testing.T) {
	w := window.NewCount(4, 4)
	q := query.NewBuilder("pj").
		FromAs("L", "L", leftSchema, w).
		FromAs("R", "R", rightSchema, w).
		Join(expr.Cmp{Op: expr.Eq, Left: expr.Col("v"), Right: expr.Col("w")}).
		Select("v").
		SelectAs(expr.QCol("R", "timestamp"), "rts").
		MustBuild()
	p := mustCompile(t, q)
	if p.OutputSchema().NumFields() != 2 {
		t.Fatalf("out = %s", p.OutputSchema())
	}
	l, r := genPair(8, 2)
	out := runPlanStreams(t, p, [2][]byte{l, r}, 8)
	if len(out) == 0 || len(out)%p.OutputSchema().TupleSize() != 0 {
		t.Fatalf("output size %d", len(out))
	}
}

func TestJoinTimeWindows(t *testing.T) {
	w := window.NewTime(4, 4)
	p := joinPlan(t, w, expr.Cmp{Op: expr.Eq, Left: expr.Col("v"), Right: expr.Col("w")})
	l, r := genPair(32, 4) // timestamps == indices, so time==count here
	out := runPlanStreams(t, p, [2][]byte{l, r}, 5)
	want := refJoin(l, r, window.NewCount(4, 4), 32)
	got := gotJoin(p, out, window.NewCount(4, 4))
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
}

func TestJoinMismatchedWindowKindsRejected(t *testing.T) {
	q := query.NewBuilder("bad").
		FromAs("L", "L", leftSchema, window.NewCount(4, 4)).
		FromAs("R", "R", rightSchema, window.NewTime(4, 4)).
		Join(expr.Cmp{Op: expr.Eq, Left: expr.Col("v"), Right: expr.Col("w")}).
		MustBuild()
	if _, err := Compile(q); err == nil {
		t.Fatal("mixed window kinds compiled")
	}
}

// TestJoinLaggingInput: one input runs far ahead of the other across
// batches. A window must not close until BOTH inputs have passed it, even
// though the closes happen in different tasks.
func TestJoinLaggingInput(t *testing.T) {
	w := window.NewTime(4, 4)
	p := joinPlan(t, w, expr.Cmp{Op: expr.Eq, Left: expr.Col("v"), Right: expr.Col("w")})
	l, r := genPair(32, 4)

	asm := NewAssembler(p)
	var out []byte
	lsz, rsz := leftSchema.TupleSize(), rightSchema.TupleSize()

	// Task 1: all of L, none of R. Task 2: none of L, all of R.
	tasks := [][2]Batch{
		{{Data: l, Ctx: window.Context{FirstIndex: 0, PrevTimestamp: window.NoPrev}}, {Ctx: window.Context{PrevTimestamp: window.NoPrev}}},
		{{Data: nil, Ctx: window.Context{FirstIndex: 32, PrevTimestamp: 31}}, {Data: r, Ctx: window.Context{FirstIndex: 0, PrevTimestamp: window.NoPrev}}},
	}
	for _, in := range tasks {
		res := p.NewResult()
		if err := p.Process(in, res); err != nil {
			t.Fatal(err)
		}
		out = asm.Drain(res, out)
		p.ReleaseResult(res)
	}
	out = asm.Flush(out)

	want := refJoin(l, r, window.NewCount(4, 4), 32) // ts == index
	got := gotJoin(p, out, window.NewCount(4, 4))
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %s want %s", i, got[i], want[i])
		}
	}
	_ = lsz
	_ = rsz
}
